package flatenc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"strings"
	"unsafe"
)

// View is a zero-copy reader over one flat payload body. It holds section
// offsets into the raw bytes and materializes nothing: keys and string
// values handed out by ForEach are unsafe.String views directly over the
// frame, valid only while the frame bytes stay alive and unmodified.
// Callers that retain keys or values past the frame's lifetime (a pooled
// RPC buffer about to be recycled, a mutable copy) must go through
// Materialize, which copies everything into independent memory.
//
// A View is a small value type; copying it is free and no Close is
// needed.
type View struct {
	data []byte // full body, including header
	n    int    // entry count

	tagsOff     int
	keyLensOff  int // -1 for value lists (no keys)
	numOff      int
	byteLensOff int
	keyArenaOff int
	byteArena   int
}

// MakeView validates the structure of one flat body and returns a View
// over it. Validation is O(1): section bounds are checked from the
// header; per-entry lengths are checked lazily as sections are walked.
func MakeView(data []byte) (View, error) {
	return makeView(data, true)
}

// MakeValuesView validates a bare value-list body (AppendValues).
func MakeValuesView(data []byte) (View, error) {
	return makeView(data, false)
}

func makeView(data []byte, keyed bool) (View, error) {
	if len(data) < headerLen {
		return View{}, fmt.Errorf("%w: %d bytes, want ≥ %d", ErrMalformed, len(data), headerLen)
	}
	if data[0] != Version {
		return View{}, fmt.Errorf("%w: version %d, want %d", ErrMalformed, data[0], Version)
	}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	keyArenaLen := int(binary.LittleEndian.Uint32(data[5:]))
	numCount := int(binary.LittleEndian.Uint32(data[9:]))
	byteCount := int(binary.LittleEndian.Uint32(data[13:]))
	byteArenaLen := int(binary.LittleEndian.Uint32(data[17:]))
	if n < 0 || numCount < 0 || byteCount < 0 || numCount > n || byteCount > n {
		return View{}, fmt.Errorf("%w: counts %d/%d/%d", ErrMalformed, n, numCount, byteCount)
	}
	if !keyed && keyArenaLen != 0 {
		return View{}, fmt.Errorf("%w: value list with key arena", ErrMalformed)
	}
	v := View{data: data, n: n, tagsOff: headerLen}
	off := headerLen + n // tags
	if keyed {
		v.keyLensOff = off
		off += 4 * n
	} else {
		v.keyLensOff = -1
	}
	v.numOff = off
	off += 8 * numCount
	v.byteLensOff = off
	off += 4 * byteCount
	v.keyArenaOff = off
	off += keyArenaLen
	v.byteArena = off
	off += byteArenaLen
	if off != len(data) {
		return View{}, fmt.Errorf("%w: size %d, sections need %d", ErrMalformed, len(data), off)
	}
	return v, nil
}

// Len returns the number of entries.
func (v View) Len() int { return v.n }

// unsafeString exposes b as a string without copying. The result aliases
// the view's frame; see the View lifetime contract.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// ForEach calls fn for every entry in encoded order, stopping early when
// fn returns false. Keys and string values are zero-copy views over the
// frame; []byte values are sub-slices of it; escape-hatch (gob) values
// are freshly decoded. It returns an error only on structural corruption
// (a per-entry length overrunning its arena).
func (v View) ForEach(fn func(key string, value any) bool) error {
	keyOff, numIdx, byteOff, byteIdx := v.keyArenaOff, 0, v.byteArena, 0
	for i := 0; i < v.n; i++ {
		var key string
		if v.keyLensOff >= 0 {
			kl := int(binary.LittleEndian.Uint32(v.data[v.keyLensOff+4*i:]))
			if kl < 0 || keyOff+kl > v.byteArena {
				return fmt.Errorf("%w: key %d overruns arena", ErrMalformed, i)
			}
			key = unsafeString(v.data[keyOff : keyOff+kl])
			keyOff += kl
		}
		val, nBytes, err := v.value(i, numIdx, byteOff, byteIdx)
		if err != nil {
			return err
		}
		switch v.data[v.tagsOff+i] {
		case tagInt, tagInt64, tagUint64, tagFloat64:
			numIdx++
		case tagString, tagBytes, tagGob:
			byteOff += nBytes
			byteIdx++
		}
		if !fn(key, val) {
			return nil
		}
	}
	return nil
}

// ForEachInt64 visits every entry whose value is an integer scalar (int
// or int64) as an int64, stopping early when fn returns false. Unlike
// ForEach it never boxes values into interfaces, so the walk allocates
// nothing — the fast path for consumers that know their payload shape,
// like counting reducers summing a wire frame. Entries of any other type
// are skipped; the count of skipped entries is returned so callers can
// detect a shape mismatch. Keys follow the View aliasing contract.
func (v View) ForEachInt64(fn func(key string, value int64) bool) (skipped int, err error) {
	keyOff, numIdx, byteOff, byteIdx := v.keyArenaOff, 0, v.byteArena, 0
	for i := 0; i < v.n; i++ {
		var key string
		if v.keyLensOff >= 0 {
			kl := int(binary.LittleEndian.Uint32(v.data[v.keyLensOff+4*i:]))
			if kl < 0 || keyOff+kl > v.byteArena {
				return skipped, fmt.Errorf("%w: key %d overruns arena", ErrMalformed, i)
			}
			key = unsafeString(v.data[keyOff : keyOff+kl])
			keyOff += kl
		}
		switch tag := v.data[v.tagsOff+i]; tag {
		case tagInt, tagInt64:
			n := int64(binary.LittleEndian.Uint64(v.data[v.numOff+8*numIdx:]))
			numIdx++
			if !fn(key, n) {
				return skipped, nil
			}
		case tagUint64, tagFloat64:
			numIdx++
			skipped++
		case tagString, tagBytes, tagGob:
			bl := int(binary.LittleEndian.Uint32(v.data[v.byteLensOff+4*byteIdx:]))
			if bl < 0 || byteOff+bl > len(v.data) {
				return skipped, fmt.Errorf("%w: value %d overruns arena", ErrMalformed, i)
			}
			byteOff += bl
			byteIdx++
			skipped++
		case tagNil, tagFalse, tagTrue:
			skipped++
		default:
			return skipped, fmt.Errorf("%w: unknown tag %d", ErrMalformed, tag)
		}
	}
	return skipped, nil
}

// value decodes entry i given the current column cursors, returning the
// value and (for byte-column entries) its arena length.
func (v View) value(i, numIdx, byteOff, byteIdx int) (any, int, error) {
	switch tag := v.data[v.tagsOff+i]; tag {
	case tagNil:
		return nil, 0, nil
	case tagFalse:
		return false, 0, nil
	case tagTrue:
		return true, 0, nil
	case tagInt, tagInt64, tagUint64, tagFloat64:
		bits := binary.LittleEndian.Uint64(v.data[v.numOff+8*numIdx:])
		switch tag {
		case tagInt:
			return int(int64(bits)), 0, nil
		case tagInt64:
			return int64(bits), 0, nil
		case tagUint64:
			return bits, 0, nil
		default:
			return math.Float64frombits(bits), 0, nil
		}
	case tagString, tagBytes, tagGob:
		bl := int(binary.LittleEndian.Uint32(v.data[v.byteLensOff+4*byteIdx:]))
		if bl < 0 || byteOff+bl > len(v.data) {
			return nil, 0, fmt.Errorf("%w: value %d overruns arena", ErrMalformed, i)
		}
		raw := v.data[byteOff : byteOff+bl]
		switch tag {
		case tagString:
			return unsafeString(raw), bl, nil
		case tagBytes:
			return raw, bl, nil
		default:
			val, err := decodeGobValue(raw)
			if err != nil {
				return nil, 0, fmt.Errorf("flatenc: entry %d: %w", i, err)
			}
			return val, bl, nil
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown tag %d", ErrMalformed, v.data[v.tagsOff+i])
	}
}

// decodeGobValue decodes one escape-hatch value.
func decodeGobValue(raw []byte) (any, error) {
	EnsureBuiltins()
	var w gobValue
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err != nil {
		return nil, err
	}
	return w.V, nil
}

// Get returns the value stored under key, or (nil, false). The lookup is
// a linear scan — Views are meant for full-pass consumers (merges,
// materialization); random access over large payloads should materialize
// first. The returned value follows ForEach's aliasing rules.
func (v View) Get(key string) (any, bool) {
	var out any
	found := false
	_ = v.ForEach(func(k string, val any) bool {
		if k == key {
			out, found = val, true
			return false
		}
		return true
	})
	return out, found
}

// Materialize builds a fresh Go map from the view. Keys and string/[]byte
// values are copied into independent memory, so the result is safe to
// retain and mutate after the frame is recycled. The map is allocated at
// exactly the entry count; this is the only map allocation on the decode
// path.
func (v View) Materialize() (Payload, error) {
	out := make(Payload, v.n)
	err := v.ForEach(func(key string, val any) bool {
		k := strings.Clone(key) // detach from the frame
		switch x := val.(type) {
		case string:
			val = strings.Clone(x)
		case []byte:
			val = append([]byte(nil), x...)
		}
		out[k] = val
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaterializeValues decodes a value-list view into a fresh []any with
// detached strings and byte slices.
func (v View) MaterializeValues() ([]any, error) {
	out := make([]any, 0, v.n)
	err := v.ForEach(func(_ string, val any) bool {
		switch x := val.(type) {
		case string:
			val = strings.Clone(x)
		case []byte:
			val = append([]byte(nil), x...)
		}
		out = append(out, val)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Values decodes a value-list view zero-copy: strings and []byte values
// alias the frame. Valid only while the frame stays alive and unmodified
// — the dist worker uses this to run map tasks straight off the wire.
func (v View) Values() ([]any, error) {
	out := make([]any, 0, v.n)
	err := v.ForEach(func(_ string, val any) bool {
		out = append(out, val)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
