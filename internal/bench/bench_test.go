package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"slider/internal/sliderrt"
)

// quickApps returns a fast two-app subset (one data-intensive, one
// compute-intensive) for unit tests.
func quickApps(t *testing.T, s Scale) []App {
	t.Helper()
	all := MicroApps(s)
	var out []App
	for _, a := range all {
		if a.Name == "HCT" || a.Name == "K-Means" {
			out = append(out, a)
		}
	}
	if len(out) != 2 {
		t.Fatal("missing quick apps")
	}
	return out
}

func TestRunCellAllModes(t *testing.T) {
	s := Quick()
	for _, app := range quickApps(t, s) {
		for _, mode := range Modes {
			m, err := RunCell(s, app, mode, 10)
			if err != nil {
				t.Fatalf("%s/%v: %v", app.Name, mode, err)
			}
			if m.SliderReport.Work <= 0 || m.ScratchReport.Work <= 0 {
				t.Fatalf("%s/%v: zero work recorded", app.Name, mode)
			}
			if m.WorkSpeedupVsScratch() <= 1 {
				t.Errorf("%s/%v: work speedup %.2f ≤ 1 — incremental run did not save work",
					app.Name, mode, m.WorkSpeedupVsScratch())
			}
		}
	}
}

// retryOnce runs a wall-clock-sensitive check up to twice: a systematic
// regression fails both attempts, while one-off scheduler/GC noise (the
// tests share a small CI machine with the benchmarks) does not.
func retryOnce(t *testing.T, attempt func() error) {
	t.Helper()
	err := attempt()
	if err == nil {
		return
	}
	t.Logf("first attempt failed (%v); retrying once", err)
	if err := attempt(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupDecreasesWithChange(t *testing.T) {
	s := Quick()
	app := quickApps(t, s)[1] // K-Means: compute-bound, low noise
	retryOnce(t, func() error {
		small, err := RunCell(s, app, sliderrt.Fixed, 5)
		if err != nil {
			return err
		}
		large, err := RunCell(s, app, sliderrt.Fixed, 25)
		if err != nil {
			return err
		}
		if small.WorkSpeedupVsScratch() <= large.WorkSpeedupVsScratch() {
			return fmt.Errorf("speedup should shrink as the delta grows: 5%%=%.2f 25%%=%.2f",
				small.WorkSpeedupVsScratch(), large.WorkSpeedupVsScratch())
		}
		return nil
	})
}

func TestSliderBeatsStrawman(t *testing.T) {
	s := Quick()
	app := quickApps(t, s)[0] // HCT: contraction-heavy
	m, err := RunCell(s, app, sliderrt.Fixed, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The strawman re-combines Θ(window); the rotating tree re-combines
	// Θ(log window): slider must do fewer combine calls.
	if m.SliderReport.Counters.CombineCalls >= m.StrawReport.Counters.CombineCalls {
		t.Fatalf("slider combines (%d) should be below strawman (%d)",
			m.SliderReport.Counters.CombineCalls, m.StrawReport.Counters.CombineCalls)
	}
}

func TestFigureFormatting(t *testing.T) {
	s := Quick()
	sweep, err := RunSweep(s, quickApps(t, s)[:1], []int{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	if got := Figure7(sweep); !strings.Contains(got, "Figure 7") || !strings.Contains(got, "K-Means") {
		t.Fatalf("figure 7 output malformed:\n%s", got)
	}
	if got := Figure8(sweep); !strings.Contains(got, "strawman") {
		t.Fatalf("figure 8 output malformed:\n%s", got)
	}
	if got := Figure9(sweep); !strings.Contains(got, "5% change") {
		t.Fatalf("figure 9 output malformed:\n%s", got)
	}
	if got := Figure13(sweep); !strings.Contains(got, "space") {
		t.Fatalf("figure 13 output malformed:\n%s", got)
	}
}

func TestFigure10QuerySpeedups(t *testing.T) {
	retryOnce(t, func() error {
		results, text, err := Figure10(Quick())
		if err != nil {
			return err
		}
		if len(results) != 9 {
			return fmt.Errorf("got %d (query, mode) cells, want 9", len(results))
		}
		for _, r := range results {
			if r.WorkSpeedup <= 1 {
				return fmt.Errorf("%s/%v: query work speedup %.2f ≤ 1", r.Query, r.Mode, r.WorkSpeedup)
			}
			if r.Stages < 2 {
				return fmt.Errorf("%s compiles to %d stage(s), want a pipeline", r.Query, r.Stages)
			}
		}
		if !strings.Contains(text, "Figure 10") {
			return fmt.Errorf("missing header")
		}
		return nil
	})
}

func TestFigure11SplitProcessing(t *testing.T) {
	s := Quick()
	res, text, err := Figure11(s, quickApps(t, s))
	if err != nil {
		t.Fatal(err)
	}
	for mode, rows := range res {
		for _, r := range rows {
			if r.Background <= 0 {
				t.Errorf("%v/%s: no background work recorded", mode, r.App)
			}
			// The fixed-width saving is structural (1 combine instead of
			// log N), so assert it strictly; the append-mode foreground
			// only skips a single merge and can be noise-bound at test
			// scale, so only sanity-check it.
			limit := 2.5
			if mode == sliderrt.Fixed {
				limit = 1.2
			}
			if r.Foreground >= limit {
				t.Errorf("%v/%s: foreground %.2f ≥ %.1f", mode, r.App, r.Foreground, limit)
			}
		}
	}
	if !strings.Contains(text, "split processing") {
		t.Fatal("missing header")
	}
}

func TestFigure12Randomized(t *testing.T) {
	s := Quick()
	results, _, err := Figure12(s, MicroApps(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// The paper's key finding: at 50% removal the randomized tree wins;
	// at 25% the standard tree is comparable or slightly better. We
	// assert the relative ordering per app rather than exact values.
	byApp := map[string]map[int]float64{}
	for _, r := range results {
		if byApp[r.App] == nil {
			byApp[r.App] = map[int]float64{}
		}
		byApp[r.App][r.RemovePct] = r.WorkSpeedup
	}
	for app, m := range byApp {
		if m[50] <= m[25]*0.8 {
			t.Errorf("%s: randomized tree should gain more at 50%% removal (25%%=%.2f, 50%%=%.2f)",
				app, m[25], m[50])
		}
	}
}

func TestTables(t *testing.T) {
	s := Quick()
	appList := quickApps(t, s)

	t1, text, err := Table1(s, appList)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t1 {
		if r.Normalized <= 0 || r.Normalized > 1.6 {
			t.Errorf("table1 %s: normalized %.2f out of range", r.App, r.Normalized)
		}
	}
	if !strings.Contains(text, "Table 1") {
		t.Fatal("table1 header")
	}

	t2, _, err := Table2(s, appList)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t2 {
		if r.ReductionPct <= 0 {
			t.Errorf("table2 %s: caching saved nothing (%.2f%%)", r.App, r.ReductionPct)
		}
	}
}

func TestCaseStudies(t *testing.T) {
	s := Quick()
	for name, run := range map[string]func(Scale) ([]CaseStudyRow, string, error){
		"table3": Table3, "table4": Table4, "table5": Table5,
	} {
		retryOnce(t, func() error {
			rows, text, err := run(s)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if len(rows) == 0 {
				return fmt.Errorf("%s: no rows", name)
			}
			// Wall-clock work at test scale carries single-core
			// scheduling and GC noise; assert on the median with a
			// loose per-row floor rather than demanding every row
			// individually beats 1×.
			speedups := make([]float64, 0, len(rows))
			for _, r := range rows {
				if r.WorkSpeedup < 0.3 {
					return fmt.Errorf("%s %s: work speedup %.2f below sanity floor", name, r.Label, r.WorkSpeedup)
				}
				speedups = append(speedups, r.WorkSpeedup)
			}
			sort.Float64s(speedups)
			if median := speedups[len(speedups)/2]; median <= 1 {
				return fmt.Errorf("%s: median work speedup %.2f ≤ 1", name, median)
			}
			if !strings.Contains(text, "===") {
				return fmt.Errorf("%s: missing header", name)
			}
			return nil
		})
	}
}

func TestAblations(t *testing.T) {
	s := Quick()
	var matrix App
	for _, a := range MicroApps(s) {
		if a.Name == "Matrix" {
			matrix = a
		}
	}
	res, _, err := AblationBucket(s, matrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Fatalf("bucket ablation returned %d configs", len(res))
	}
	res2, _, err := AblationRebuild(s, matrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 3 {
		t.Fatalf("rebuild ablation returned %d configs", len(res2))
	}
}

func TestAblationWindowScale(t *testing.T) {
	s := Quick()
	var app App
	for _, a := range MicroApps(s) {
		if a.Name == "K-Means" {
			app = a
		}
	}
	res, text, err := AblationWindowScale(s, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d window sizes", len(res))
	}
	// The asymptotic claim: at a constant delta, doubling the window
	// must increase the speedup (sub-linear update work).
	if res[2].WorkSpeedup <= res[0].WorkSpeedup {
		t.Fatalf("speedup did not grow with window: %.2f (w=%d) vs %.2f (w=%d)",
			res[0].WorkSpeedup, res[0].WindowSplits,
			res[2].WorkSpeedup, res[2].WindowSplits)
	}
	// And the combiner count must grow sub-linearly: ≤ 2× for a 4×
	// window (log-depth paths), not 4×.
	if res[2].SliderCombines > 3*res[0].SliderCombines {
		t.Fatalf("combiner count grew super-logarithmically: %d (w=%d) vs %d (w=%d)",
			res[0].SliderCombines, res[0].WindowSplits,
			res[2].SliderCombines, res[2].WindowSplits)
	}
	if !strings.Contains(text, "window size") {
		t.Fatal("missing header")
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Quick(), []string{"fig10"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("selected experiment missing from output")
	}
	if strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("unselected experiment present in output")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := RunJSON(&buf, Quick(), "quick"); err != nil {
		t.Fatal(err)
	}
	var decoded ResultsJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Scale != "quick" {
		t.Fatalf("scale = %q", decoded.Scale)
	}
	if len(decoded.Sweep) != 5*3*5 {
		t.Fatalf("sweep cells = %d, want 75", len(decoded.Sweep))
	}
	if len(decoded.Queries) != 9 {
		t.Fatalf("query cells = %d, want 9", len(decoded.Queries))
	}
	if len(decoded.Scheduler) != 5 || len(decoded.CacheSavings) != 5 {
		t.Fatalf("per-app tables incomplete: %d / %d", len(decoded.Scheduler), len(decoded.CacheSavings))
	}
	if len(decoded.CaseStudies) == 0 || len(decoded.Randomized) != 4 || len(decoded.WindowScale) != 3 {
		t.Fatalf("extras incomplete: %d / %d / %d",
			len(decoded.CaseStudies), len(decoded.Randomized), len(decoded.WindowScale))
	}
}

// TestBackendsDabaBeatsRotating is the CI smoke for the backend
// head-to-head: on wordcount at a wide fixed width, the DABA queue must
// beat the rotating tree on per-slide merge count and heap allocations,
// its merge count must respect the worst-case constant bound at every
// width, and the rotating tree's must grow with the window — the O(1)
// vs O(log w) separation BENCH_daba.json records.
func TestBackendsDabaBeatsRotating(t *testing.T) {
	res, text, err := RunBackends(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", text)
	windows := backendWindows(Quick())
	// Worst-case constant bound at every width: ≤5 combines per slide
	// plus the root query, per partition, independent of the window.
	bound := 6.0 * float64(Quick().Partitions)
	for _, w := range windows {
		daba, ok := res.Find("daba", w)
		if !ok {
			t.Fatalf("missing daba cell at window %d", w)
		}
		if daba.MergesPerSlide > bound {
			t.Errorf("window %d: daba merges/slide %.1f exceeds constant bound %.1f",
				w, daba.MergesPerSlide, bound)
		}
	}
	// At the wide fixed width the asymptotics dominate: daba wins on
	// merges and allocations. (At the narrowest window the rotating
	// tree's root path is only a few levels deep — that is the crossover
	// the sweep exists to show.)
	wide := windows[len(windows)-1]
	daba, _ := res.Find("daba", wide)
	rot, ok := res.Find("rotating", wide)
	if !ok {
		t.Fatalf("missing rotating cell at window %d", wide)
	}
	if daba.MergesPerSlide >= rot.MergesPerSlide {
		t.Errorf("window %d: daba merges/slide %.1f not below rotating %.1f",
			wide, daba.MergesPerSlide, rot.MergesPerSlide)
	}
	if daba.AllocsPerSlide >= rot.AllocsPerSlide {
		t.Errorf("window %d: daba allocs/slide %.1f not below rotating %.1f",
			wide, daba.AllocsPerSlide, rot.AllocsPerSlide)
	}
	// The rotating tree's per-slide merges grow with the window; DABA's
	// stay bounded (checked above), so the gap widens.
	rotFirst, _ := res.Find("rotating", windows[0])
	if rot.MergesPerSlide <= rotFirst.MergesPerSlide {
		t.Errorf("rotating merges/slide did not grow with the window: %.1f at %d vs %.1f at %d",
			rot.MergesPerSlide, wide, rotFirst.MergesPerSlide, windows[0])
	}
}

// TestWriteBackendsJSON checks the BENCH_daba.json document shape.
func TestWriteBackendsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBackendsJSON(&buf, Quick()); err != nil {
		t.Fatal(err)
	}
	var res BackendsResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res.App != "wordcount" || len(res.Cells) != 2*len(backendWindows(Quick())) {
		t.Fatalf("unexpected document: app=%q cells=%d", res.App, len(res.Cells))
	}
}
