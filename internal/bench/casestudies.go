package bench

import (
	"fmt"

	"slider/internal/apps"
	"slider/internal/mapreduce"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// Table4 reproduces the Twitter information-propagation case study
// (§8.1, Table 4): an initial historical interval followed by weekly
// appends of roughly 5%, in append-only mode.
func Table4(s Scale) ([]CaseStudyRow, string, error) {
	tw := workload.NewTwitter(workload.TwitterConfig{
		Seed: 42, Users: 1500, MeanFollows: 10, URLs: 300,
		TweetsPerSplit: 200,
	})
	job := apps.TwitterPropagation(s.Partitions, tw.Graph())
	newJob := func() *mapreduce.Job { return apps.TwitterPropagation(s.Partitions, tw.Graph()) }

	initialSplits := s.WindowSplits * 2 // the long Mar'06–Jun'09 interval
	weekly := initialSplits / 20        // ≈5% appends
	if weekly < 1 {
		weekly = 1
	}
	rt, err := sliderrt.New(job, modeConfig(sliderrt.Append, sliderrt.SelfAdjusting, 0, 0, s.Cluster.Nodes))
	if err != nil {
		return nil, "", err
	}
	window := tw.Range(0, initialSplits)
	if _, err := rt.Initial(window); err != nil {
		return nil, "", err
	}
	var rows []CaseStudyRow
	next := initialSplits
	for week := 1; week <= 4; week++ {
		add := tw.Range(next, next+weekly)
		next += weekly
		row, err := caseStudyAdvance(s, rt, newJob(), &window, 0, add,
			fmt.Sprintf("Jul'09 wk%d", week))
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	return rows, formatCaseStudy("=== Table 4: Twitter information propagation (append-only) ===", rows), nil
}

// Table3 reproduces the Glasnost monitoring case study (§8.2, Table 3):
// a 3-month window of measurement data sliding monthly across 11 months,
// with month-to-month volume variation.
func Table3(s Scale) ([]CaseStudyRow, string, error) {
	gen := workload.NewGlasnost(workload.GlasnostConfig{
		Seed: 42, Servers: 8,
		RunsPerSplit:   s.Text.LinesPerSplit * 20,
		SplitsPerMonth: maxInt(4, s.WindowSplits/8),
	})
	newJob := func() *mapreduce.Job { return apps.GlasnostMonitor(s.Partitions) }

	// Window = months {0,1,2}; slide by one month, eight times
	// (Jan–Mar … Sep–Nov, as in the paper).
	rt, err := sliderrt.New(newJob(), modeConfig(sliderrt.Variable, sliderrt.SelfAdjusting, 0, 0, s.Cluster.Nodes))
	if err != nil {
		return nil, "", err
	}
	var window []mapreduce.Split
	for m := 0; m < 3; m++ {
		window = append(window, gen.MonthSplitsVar(m)...)
	}
	if _, err := rt.Initial(window); err != nil {
		return nil, "", err
	}
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov"}
	var rows []CaseStudyRow
	for slide := 0; slide < 8; slide++ {
		drop := len(gen.MonthSplitsVar(slide))
		add := gen.MonthSplitsVar(slide + 3)
		label := fmt.Sprintf("%s-%s", months[slide+1], months[slide+3])
		row, err := caseStudyAdvance(s, rt, newJob(), &window, drop, add, label)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	return rows, formatCaseStudy("=== Table 3: Glasnost monitoring (3-month window, monthly slides) ===", rows), nil
}

// Table5 reproduces the Akamai NetSession accountability case study
// (§8.3, Table 5): a 4-week window of client logs audited weekly, where
// the 5th week's upload availability varies from 100% down to 75% — a
// variable-width window.
func Table5(s Scale) ([]CaseStudyRow, string, error) {
	gen := workload.NewNetSession(workload.NetSessionConfig{
		Seed: 42, Clients: 4000,
		LogsPerSplit:  20,
		EntriesPerLog: 150,
		TamperRate:    0.02,
	})
	newJob := func() *mapreduce.Job { return apps.NetSessionAudit(s.Partitions, 64) }
	fullSplits := maxInt(2, s.WindowSplits/5)

	var rows []CaseStudyRow
	for _, pct := range []int{100, 95, 90, 85, 80, 75} {
		rt, err := sliderrt.New(newJob(), modeConfig(sliderrt.Variable, sliderrt.SelfAdjusting, 0, 0, s.Cluster.Nodes))
		if err != nil {
			return nil, "", err
		}
		// Four full weeks in the window.
		var window []mapreduce.Split
		idx := 0
		for week := 1; week <= 4; week++ {
			ws := gen.WeekSplits(idx, week, fullSplits, 1.0)
			idx += len(ws)
			window = append(window, ws...)
		}
		if _, err := rt.Initial(window); err != nil {
			return nil, "", err
		}
		// Slide: drop week 1, add week 5 at the given upload rate.
		add := gen.WeekSplits(idx, 5, fullSplits, float64(pct)/100)
		row, err := caseStudyAdvance(s, rt, newJob(), &window, fullSplits, add,
			fmt.Sprintf("%d%% online", pct))
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	return rows, formatCaseStudy("=== Table 5: NetSession log audits (variable-width window) ===", rows), nil
}
