package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"slider/internal/memo"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// The outoforder experiment measures the finger-tree backend's bulk
// operations: advancing the window by K buckets in one bulk
// evict-and-insert (one treap split plus one O(K) build-and-join,
// c·(K + log w) combines) against the same K buckets applied as K
// sequential single-bucket slides (K root paths, c·K·log w combines).
// Both sides serve byte-identical windows and end in the same state;
// the gap is the log factor the FiBA bulk algorithms delete, and it
// widens with K. Results serialize to BENCH_ooo.json.

// OOOCell is one K measurement: a single K-bucket bulk advance vs K
// sequential single-bucket slides over the same window.
type OOOCell struct {
	K             int     `json:"k"`
	WindowBuckets int     `json:"windowBuckets"`
	BulkMerges    int64   `json:"bulkMerges"`
	SeqMerges     int64   `json:"seqMerges"`
	BulkNs        int64   `json:"bulkNs"`
	SeqNs         int64   `json:"seqNs"`
	MergeRatio    float64 `json:"mergeRatio"` // seq/bulk: >1 means bulk wins
}

// OOOResult is the full bulk-vs-sequential sweep, serialized to
// BENCH_ooo.json.
type OOOResult struct {
	Scale      string    `json:"scale"`
	App        string    `json:"app"`
	Cells      []OOOCell `json:"cells"`
	DurationMs int64     `json:"durationMs"`
}

// oooWindowBuckets is the window width the sweep runs at: wide enough
// that the largest K still leaves a live window and the log factor is
// visible.
const oooWindowBuckets = 512

// oooKs is the bulk-width axis.
var oooKs = []int{4, 32, 256}

// newOOORuntime builds a finger-tree runtime over the first window
// buckets of the workload text (one split per bucket, so trace buckets
// and splits coincide).
func newOOORuntime(s Scale, text *workload.Text, window int) (*sliderrt.Runtime, error) {
	cfg := sliderrt.Config{
		Mode:          sliderrt.Fixed,
		Backend:       sliderrt.BackendFingerTree,
		BucketSplits:  1,
		WindowBuckets: window,
		Memo:          memo.DefaultConfig(),
	}
	rt, err := sliderrt.New(wordCount(s.Partitions), cfg)
	if err != nil {
		return nil, err
	}
	if _, err := rt.Initial(text.Range(0, window)); err != nil {
		return nil, err
	}
	return rt, nil
}

// measureOOO runs one K cell: both runtimes consume the same K fresh
// buckets, one in a single bulk advance, one bucket at a time.
func measureOOO(s Scale, k int) (OOOCell, error) {
	cell := OOOCell{K: k, WindowBuckets: oooWindowBuckets}
	text := workload.NewText(s.Text)

	bulkRT, err := newOOORuntime(s, text, oooWindowBuckets)
	if err != nil {
		return cell, err
	}
	seqRT, err := newOOORuntime(s, text, oooWindowBuckets)
	if err != nil {
		return cell, err
	}

	start := time.Now()
	res, err := bulkRT.Advance(k, text.Range(oooWindowBuckets, oooWindowBuckets+k))
	if err != nil {
		return cell, fmt.Errorf("bulk advance k=%d: %w", k, err)
	}
	cell.BulkNs = time.Since(start).Nanoseconds()
	cell.BulkMerges = res.TreeStats.Merges + res.TreeStatsBackground.Merges

	start = time.Now()
	for i := 0; i < k; i++ {
		res, err := seqRT.Advance(1, text.Range(oooWindowBuckets+i, oooWindowBuckets+i+1))
		if err != nil {
			return cell, fmt.Errorf("sequential slide %d/%d: %w", i+1, k, err)
		}
		cell.SeqMerges += res.TreeStats.Merges + res.TreeStatsBackground.Merges
	}
	cell.SeqNs = time.Since(start).Nanoseconds()

	if cell.BulkMerges > 0 {
		cell.MergeRatio = float64(cell.SeqMerges) / float64(cell.BulkMerges)
	}
	return cell, nil
}

// RunOutOfOrder measures the bulk-vs-sequential sweep and renders a
// text table.
func RunOutOfOrder(s Scale) (*OOOResult, string, error) {
	start := time.Now()
	out := &OOOResult{Scale: "quick", App: "wordcount"}
	if s.WindowSplits >= 60 {
		out.Scale = "full"
	}
	for _, k := range oooKs {
		cell, err := measureOOO(s, k)
		if err != nil {
			return nil, "", fmt.Errorf("outoforder k=%d: %w", k, err)
		}
		out.Cells = append(out.Cells, cell)
	}
	out.DurationMs = time.Since(start).Milliseconds()

	var sb strings.Builder
	sb.WriteString("Out-of-order: bulk K-bucket advance vs K sequential slides (finger tree, wordcount)\n")
	fmt.Fprintf(&sb, "window=%d buckets\n", oooWindowBuckets)
	sb.WriteString("     K   bulk-merges    seq-merges   ratio      bulk-ns        seq-ns\n")
	for _, c := range out.Cells {
		fmt.Fprintf(&sb, "%6d   %11d  %12d  %6.1fx  %11d  %12d\n",
			c.K, c.BulkMerges, c.SeqMerges, c.MergeRatio, c.BulkNs, c.SeqNs)
	}
	return out, sb.String(), nil
}

// WriteOOOJSON runs the sweep and writes BENCH_ooo.json to w.
func WriteOOOJSON(w io.Writer, s Scale) error {
	res, _, err := RunOutOfOrder(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
