package bench

import "testing"

// TestOutOfOrderBulkBeatsSequential pins the bulk-operation win the
// FiBA bulk algorithms promise: advancing the window by K buckets in
// one bulk evict-and-insert must cost fewer combiner calls than the
// same K buckets applied as K sequential slides, for every K ≥ 32.
// Merge counts are deterministic, so unlike the timing columns this
// smoke is safe on loaded CI runners.
func TestOutOfOrderBulkBeatsSequential(t *testing.T) {
	res, text, err := RunOutOfOrder(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", text)
	if len(res.Cells) != len(oooKs) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(oooKs))
	}
	for _, c := range res.Cells {
		if c.BulkMerges <= 0 || c.SeqMerges <= 0 {
			t.Fatalf("K=%d: degenerate merge counts (bulk %d, seq %d)", c.K, c.BulkMerges, c.SeqMerges)
		}
		if c.K >= 32 && c.BulkMerges >= c.SeqMerges {
			t.Errorf("K=%d: bulk advance cost %d merges, sequential %d — bulk must win at K ≥ 32",
				c.K, c.BulkMerges, c.SeqMerges)
		}
	}
}
