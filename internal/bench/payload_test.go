package bench

import (
	"testing"

	"slider/internal/persist"
)

// TestPayloadAllocBudget pins the flat codec's acceptance bound from the
// sld2 work: steady-state encode and typed-decode of a wordcount-shaped
// payload must stay within a fixed allocation budget, and the full
// encode+decode path must allocate at least 90% less than the legacy gob
// codec. Allocation counts are deterministic (testing.AllocsPerRun), so
// unlike the timing bounds this smoke is safe on loaded CI runners.
func TestPayloadAllocBudget(t *testing.T) {
	const entries = 256
	flat, err := measureFlatCodec(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Pooled append encode and the ForEachInt64 walk both run at zero
	// allocations today; the budget of 2 leaves room for incidental
	// runtime changes without letting a per-entry regression through.
	const budget = 2
	if flat.EncodeAllocsPerOp > budget {
		t.Errorf("flat encode: %.1f allocs/op, budget %d", flat.EncodeAllocsPerOp, budget)
	}
	if flat.DecodeAllocsPerOp > budget {
		t.Errorf("flat decode: %.1f allocs/op, budget %d", flat.DecodeAllocsPerOp, budget)
	}

	gob, err := measureGobCodec(entries)
	if err != nil {
		t.Fatal(err)
	}
	gobTotal := gob.EncodeAllocsPerOp + gob.DecodeAllocsPerOp
	flatTotal := flat.EncodeAllocsPerOp + flat.DecodeAllocsPerOp
	if gobTotal <= 0 {
		t.Fatalf("gob codec reported %.1f allocs/op", gobTotal)
	}
	reduction := 100 * (1 - flatTotal/gobTotal)
	if reduction < 90 {
		t.Errorf("flat round trip cuts allocations by %.1f%% vs gob (flat %.1f, gob %.1f), want ≥ 90%%",
			reduction, flatTotal, gobTotal)
	}
}

// TestPayloadSlideAllocs runs the wordcount slide loop under both payload
// codecs and requires the flat codec to allocate strictly less per slide:
// the end-to-end check that the memoized-state paths actually ride the
// flat encoder.
func TestPayloadSlideAllocs(t *testing.T) {
	s := Quick()
	gob, err := measurePayloadSlides(s, persist.CodecGob, 12)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := measurePayloadSlides(s, persist.CodecFlat, 12)
	if err != nil {
		t.Fatal(err)
	}
	if flat.AllocsPerSlide >= gob.AllocsPerSlide {
		t.Errorf("flat slide loop allocates %.0f/slide, gob %.0f/slide — flat must be cheaper",
			flat.AllocsPerSlide, gob.AllocsPerSlide)
	}
}
