package bench

import (
	"fmt"
	"strings"

	"slider/internal/cluster"
	"slider/internal/mapreduce"
	"slider/internal/metrics"
	"slider/internal/scheduler"
	"slider/internal/sliderrt"
)

// Table1Result is one app's scheduler comparison.
type Table1Result struct {
	App string
	// Normalized is the hybrid-scheduler makespan divided by the stock
	// Hadoop scheduler's makespan (< 1 means the hybrid wins).
	Normalized float64
}

// Table1 compares the hybrid memoization-aware scheduler against the
// stock Hadoop scheduler on the incremental runs' task mix, on a cluster
// with one slow (straggler) machine, as in §7.3.
func Table1(s Scale, appList []App) ([]Table1Result, string, error) {
	// One straggler at half speed.
	cfg := s.Cluster
	cfg.Speed = make([]float64, cfg.Nodes)
	for i := range cfg.Speed {
		cfg.Speed[i] = 1
	}
	if cfg.Nodes > 0 {
		cfg.Speed[0] = 0.4
	}
	sim := cluster.NewSimulator(cfg)

	w := s.WindowSplits
	delta := w / 10
	if delta < 1 {
		delta = 1
	}
	var results []Table1Result
	for _, app := range appList {
		rt, err := sliderrt.New(app.NewJob(), modeConfig(sliderrt.Fixed, sliderrt.SelfAdjusting, delta, w, cfg.Nodes))
		if err != nil {
			return nil, "", err
		}
		if _, err := rt.Initial(app.Gen(0, w)); err != nil {
			return nil, "", err
		}
		// Aggregate several slides so scheduling effects average out.
		var tasks []metrics.Task
		next := w
		for i := 0; i < 4; i++ {
			res, err := rt.Advance(delta, app.Gen(next, next+delta))
			if err != nil {
				return nil, "", err
			}
			next += delta
			tasks = append(tasks, res.Report.Tasks...)
		}
		base := sim.Run(tasks, scheduler.Baseline{})
		hybrid := sim.Run(tasks, scheduler.Hybrid{})
		results = append(results, Table1Result{
			App:        app.Name,
			Normalized: float64(hybrid.Makespan) / float64(maxDur(base.Makespan, 1)),
		})
	}
	var b strings.Builder
	b.WriteString("=== Table 1: hybrid scheduler run-time, normalized to Hadoop scheduler (=1) ===\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6.2f\n", r.App, r.Normalized)
	}
	return results, b.String(), nil
}

// Table2Result is one app's in-memory-caching read-time saving.
type Table2Result struct {
	App string
	// ReductionPct is the percentage reduction in memoized-state read
	// time from enabling the in-memory cache.
	ReductionPct float64
}

// Table2 measures the read-time reduction from in-memory caching for
// fixed-width windowing, by running the same slides with the cache
// enabled and disabled (shim I/O falls back to persistent replicas).
func Table2(s Scale, appList []App) ([]Table2Result, string, error) {
	w := s.WindowSplits
	delta := w / 10
	if delta < 1 {
		delta = 1
	}
	var results []Table2Result
	for _, app := range appList {
		readTime := func(inMemory bool) (int64, error) {
			cfg := modeConfig(sliderrt.Fixed, sliderrt.SelfAdjusting, delta, w, s.Cluster.Nodes)
			cfg.Memo.InMemory = inMemory
			rt, err := sliderrt.New(app.NewJob(), cfg)
			if err != nil {
				return 0, err
			}
			if _, err := rt.Initial(app.Gen(0, w)); err != nil {
				return 0, err
			}
			var total int64
			next := w
			for i := 0; i < 4; i++ {
				res, err := rt.Advance(delta, app.Gen(next, next+delta))
				if err != nil {
					return 0, err
				}
				next += delta
				total += res.ReadTimeNs
			}
			return total, nil
		}
		mem, err := readTime(true)
		if err != nil {
			return nil, "", err
		}
		disk, err := readTime(false)
		if err != nil {
			return nil, "", err
		}
		reduction := 0.0
		if disk > 0 {
			reduction = 100 * (1 - float64(mem)/float64(disk))
		}
		results = append(results, Table2Result{App: app.Name, ReductionPct: reduction})
	}
	var b strings.Builder
	b.WriteString("=== Table 2: read-time reduction from in-memory caching ===\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6.2f%%\n", r.App, r.ReductionPct)
	}
	return results, b.String(), nil
}

// CaseStudyRow is one window of a case-study run.
type CaseStudyRow struct {
	Label       string
	ChangePct   float64
	WorkSpeedup float64
	TimeSpeedup float64
}

// caseStudyAdvance measures one incremental case-study window against
// recomputation from scratch.
func caseStudyAdvance(
	s Scale,
	rt *sliderrt.Runtime,
	job *mapreduce.Job,
	window *[]mapreduce.Split,
	drop int,
	add []mapreduce.Split,
	label string,
) (CaseStudyRow, error) {
	quiesce()
	res, err := rt.Advance(drop, add)
	if err != nil {
		return CaseStudyRow{}, fmt.Errorf("%s: %w", label, err)
	}
	*window = append((*window)[drop:], add...)
	quiesce()
	rec := metrics.NewRecorder()
	out, err := mapreduce.RunScratch(job, *window, 0, rec)
	if err != nil {
		return CaseStudyRow{}, err
	}
	if !sameOutput(res.Output, out) {
		return CaseStudyRow{}, fmt.Errorf("%s: incremental output diverges from scratch", label)
	}
	scratch := rec.Snapshot()
	return CaseStudyRow{
		Label:       label,
		ChangePct:   100 * float64(len(add)) / float64(maxInt(1, len(*window))),
		WorkSpeedup: metrics.Speedup(scratch.Work, res.Report.Work),
		TimeSpeedup: metrics.Speedup(
			simulate(s, scratch, scheduler.Baseline{}),
			simulate(s, res.Report, scheduler.Hybrid{})),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// formatCaseStudy renders a case-study table.
func formatCaseStudy(title string, rows []CaseStudyRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s\n", "window", "change", "time-spd", "work-spd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9.1f%% %9.2fx %9.2fx\n", r.Label, r.ChangePct, r.TimeSpeedup, r.WorkSpeedup)
	}
	return b.String()
}
