package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// CellJSON is one sweep cell in machine-readable form.
type CellJSON struct {
	App                   string  `json:"app"`
	Mode                  string  `json:"mode"`
	ChangePct             int     `json:"changePct"`
	WorkSpeedupVsScratch  float64 `json:"workSpeedupVsScratch"`
	TimeSpeedupVsScratch  float64 `json:"timeSpeedupVsScratch"`
	WorkSpeedupVsStrawman float64 `json:"workSpeedupVsStrawman"`
	TimeSpeedupVsStrawman float64 `json:"timeSpeedupVsStrawman"`
	SliderWorkNs          int64   `json:"sliderWorkNs"`
	ScratchWorkNs         int64   `json:"scratchWorkNs"`
	SliderCombines        int64   `json:"sliderCombines"`
	StrawmanCombines      int64   `json:"strawmanCombines"`
	InitWorkOverheadPct   float64 `json:"initWorkOverheadPct"`
	SpaceBytes            int64   `json:"spaceBytes"`
	InputBytes            int64   `json:"inputBytes"`
}

// QueryJSON is one Figure 10 cell.
type QueryJSON struct {
	Query       string  `json:"query"`
	Mode        string  `json:"mode"`
	Stages      int     `json:"stages"`
	WorkSpeedup float64 `json:"workSpeedup"`
	TimeSpeedup float64 `json:"timeSpeedup"`
}

// CaseStudyJSON is one case-study window.
type CaseStudyJSON struct {
	Table       string  `json:"table"`
	Label       string  `json:"label"`
	ChangePct   float64 `json:"changePct"`
	WorkSpeedup float64 `json:"workSpeedup"`
	TimeSpeedup float64 `json:"timeSpeedup"`
}

// ResultsJSON is the machine-readable record of a full run.
type ResultsJSON struct {
	Scale        string                `json:"scale"`
	DurationMs   int64                 `json:"durationMs"`
	Sweep        []CellJSON            `json:"sweep,omitempty"`
	Queries      []QueryJSON           `json:"queries,omitempty"`
	Scheduler    map[string]float64    `json:"schedulerNormalized,omitempty"`
	CacheSavings map[string]float64    `json:"cacheReadSavingPct,omitempty"`
	CaseStudies  []CaseStudyJSON       `json:"caseStudies,omitempty"`
	Randomized   []Figure12Result      `json:"randomizedFolding,omitempty"`
	WindowScale  []AblationScaleResult `json:"windowScale,omitempty"`
}

// RunJSON executes the main experiments and writes a single JSON document
// to w (for CI tracking and regression dashboards).
func RunJSON(w io.Writer, s Scale, scaleName string) error {
	start := time.Now()
	appList := MicroApps(s)
	out := ResultsJSON{Scale: scaleName}

	sweep, err := RunSweep(s, appList, Pcts)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	for _, c := range sweep.Cells {
		initOvh := 0.0
		if c.VanillaInitReport.Work > 0 {
			initOvh = 100 * (float64(c.SliderInitReport.Work) - float64(c.VanillaInitReport.Work)) /
				float64(c.VanillaInitReport.Work)
		}
		out.Sweep = append(out.Sweep, CellJSON{
			App:                   c.App,
			Mode:                  c.Mode.String(),
			ChangePct:             c.Pct,
			WorkSpeedupVsScratch:  c.WorkSpeedupVsScratch(),
			TimeSpeedupVsScratch:  c.TimeSpeedupVsScratch(),
			WorkSpeedupVsStrawman: c.WorkSpeedupVsStrawman(),
			TimeSpeedupVsStrawman: c.TimeSpeedupVsStrawman(),
			SliderWorkNs:          int64(c.SliderReport.Work),
			ScratchWorkNs:         int64(c.ScratchReport.Work),
			SliderCombines:        c.SliderReport.Counters.CombineCalls,
			StrawmanCombines:      c.StrawReport.Counters.CombineCalls,
			InitWorkOverheadPct:   initOvh,
			SpaceBytes:            c.SpaceBytes,
			InputBytes:            c.InputBytes,
		})
	}

	queries, _, err := Figure10(s)
	if err != nil {
		return err
	}
	for _, q := range queries {
		out.Queries = append(out.Queries, QueryJSON{
			Query: q.Query, Mode: q.Mode.String(), Stages: q.Stages,
			WorkSpeedup: q.WorkSpeedup, TimeSpeedup: q.TimeSpeedup,
		})
	}

	t1, _, err := Table1(s, appList)
	if err != nil {
		return err
	}
	out.Scheduler = make(map[string]float64, len(t1))
	for _, r := range t1 {
		out.Scheduler[r.App] = r.Normalized
	}
	t2, _, err := Table2(s, appList)
	if err != nil {
		return err
	}
	out.CacheSavings = make(map[string]float64, len(t2))
	for _, r := range t2 {
		out.CacheSavings[r.App] = r.ReductionPct
	}

	for name, run := range map[string]func(Scale) ([]CaseStudyRow, string, error){
		"table3": Table3, "table4": Table4, "table5": Table5,
	} {
		rows, _, err := run(s)
		if err != nil {
			return err
		}
		for _, r := range rows {
			out.CaseStudies = append(out.CaseStudies, CaseStudyJSON{
				Table: name, Label: r.Label, ChangePct: r.ChangePct,
				WorkSpeedup: r.WorkSpeedup, TimeSpeedup: r.TimeSpeedup,
			})
		}
	}

	out.Randomized, _, err = Figure12(s, appList)
	if err != nil {
		return err
	}
	for _, app := range appList {
		if app.Name != "K-Means" {
			continue
		}
		out.WindowScale, _, err = AblationWindowScale(s, app)
		if err != nil {
			return err
		}
	}

	out.DurationMs = time.Since(start).Milliseconds()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
