package bench

import (
	"fmt"
	"strings"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// AblationScaleResult is one window size's incremental advantage.
type AblationScaleResult struct {
	WindowSplits int
	// WorkSpeedup is Slider's incremental-update work speedup vs
	// recomputing from scratch, for a constant absolute delta.
	WorkSpeedup float64
	// SliderCombines is the deterministic combiner-invocation count of
	// the incremental update.
	SliderCombines int64
}

// AblationWindowScale grows the window at a constant absolute delta and
// measures the incremental advantage: the paper's core asymptotic claim
// is that update work depends on the delta (times log-window at worst),
// so the speedup over recomputation must grow roughly linearly with the
// window size.
func AblationWindowScale(s Scale, app App) ([]AblationScaleResult, string, error) {
	const delta = 2
	var results []AblationScaleResult
	for _, w := range []int{s.WindowSplits / 2, s.WindowSplits, s.WindowSplits * 2} {
		w = delta * (w / delta)
		cfg := modeConfig(sliderrt.Fixed, sliderrt.SelfAdjusting, delta, w, s.Cluster.Nodes)
		rt, err := sliderrt.New(app.NewJob(), cfg)
		if err != nil {
			return nil, "", err
		}
		if _, err := rt.Initial(app.Gen(0, w)); err != nil {
			return nil, "", err
		}
		add := app.Gen(w, w+delta)
		quiesce()
		res, err := rt.Advance(delta, add)
		if err != nil {
			return nil, "", err
		}
		newWindow := append(app.Gen(delta, w), add...)
		quiesce()
		rec := metrics.NewRecorder()
		if _, err := mapreduce.RunScratch(app.NewJob(), newWindow, 0, rec); err != nil {
			return nil, "", err
		}
		results = append(results, AblationScaleResult{
			WindowSplits:   w,
			WorkSpeedup:    metrics.Speedup(rec.Snapshot().Work, res.Report.Work),
			SliderCombines: res.Report.Counters.CombineCalls,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== Ablation: speedup vs window size (app %s, constant %d-split delta) ===\n", app.Name, delta)
	fmt.Fprintf(&b, "%-14s %14s %18s\n", "window splits", "work speedup", "slider combines")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14d %13.2fx %18d\n", r.WindowSplits, r.WorkSpeedup, r.SliderCombines)
	}
	return results, b.String(), nil
}

// AblationBucketResult is one bucket-width configuration's update cost.
type AblationBucketResult struct {
	BucketSplits int
	UpdateWork   time.Duration
}

// AblationBucket sweeps the rotating tree's bucket width w for a fixed
// window (DESIGN.md §7): small buckets mean tall trees (more combiner
// calls per slide but finer slides); large buckets mean flat trees.
func AblationBucket(s Scale, app App) ([]AblationBucketResult, string, error) {
	w := s.WindowSplits
	var results []AblationBucketResult
	for _, bucket := range []int{1, 2, 4} {
		if w%bucket != 0 {
			continue
		}
		cfg := modeConfig(sliderrt.Fixed, sliderrt.SelfAdjusting, bucket, w, s.Cluster.Nodes)
		rt, err := sliderrt.New(app.NewJob(), cfg)
		if err != nil {
			return nil, "", err
		}
		if _, err := rt.Initial(app.Gen(0, w)); err != nil {
			return nil, "", err
		}
		var total time.Duration
		next := w
		for i := 0; i < 4; i++ {
			res, err := rt.Advance(bucket, app.Gen(next, next+bucket))
			if err != nil {
				return nil, "", err
			}
			next += bucket
			total += res.Report.PhaseWork[metrics.PhaseContraction] +
				res.Report.PhaseWork[metrics.PhaseReduce]
		}
		results = append(results, AblationBucketResult{BucketSplits: bucket, UpdateWork: total / 4})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== Ablation: rotating-tree bucket width (app %s, window %d splits) ===\n", app.Name, w)
	fmt.Fprintf(&b, "%-10s %16s\n", "w (splits)", "update work")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10d %16v\n", r.BucketSplits, r.UpdateWork)
	}
	return results, b.String(), nil
}

// AblationRebuildResult is one rebuild-factor configuration's outcome.
type AblationRebuildResult struct {
	Factor int // 0 = disabled
	// UpdateNodes counts recomputed node materializations per
	// post-shrink update (deterministic, unlike wall time at this
	// scale): the stale oversized structure recomputes longer root
	// paths on every subsequent slide.
	UpdateNodes int64
}

// AblationRebuild sweeps the folding tree's rebuild factor after a
// drastic window shrink: without rebuilding, the tree keeps its stale
// height and every later update pays for it.
func AblationRebuild(s Scale, app App) ([]AblationRebuildResult, string, error) {
	w := s.WindowSplits * 2
	var results []AblationRebuildResult
	for _, factor := range []int{-1, 16, 4} {
		cfg := modeConfig(sliderrt.Variable, sliderrt.SelfAdjusting, 0, w, s.Cluster.Nodes)
		cfg.RebuildFactor = factor
		rt, err := sliderrt.New(app.NewJob(), cfg)
		if err != nil {
			return nil, "", err
		}
		if _, err := rt.Initial(app.Gen(0, w)); err != nil {
			return nil, "", err
		}
		next := w
		// Move the window so it straddles the tree's midline, then
		// shrink drastically.
		pre := w / 4
		if _, err := rt.Advance(pre, app.Gen(next, next+pre)); err != nil {
			return nil, "", err
		}
		next += pre
		if _, err := rt.Advance(rt.Live()*9/10, nil); err != nil {
			return nil, "", err
		}
		var nodes int64
		for i := 0; i < 4; i++ {
			res, err := rt.Advance(1, app.Gen(next, next+1))
			if err != nil {
				return nil, "", err
			}
			next++
			nodes += res.TreeStats.NodesRecomputed
		}
		shown := factor
		if factor < 0 {
			shown = 0
		}
		results = append(results, AblationRebuildResult{Factor: shown, UpdateNodes: nodes / 4})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== Ablation: folding-tree rebuild factor after a 90%% shrink (app %s) ===\n", app.Name)
	fmt.Fprintf(&b, "%-16s %24s\n", "rebuild factor", "nodes recomputed/update")
	for _, r := range results {
		label := fmt.Sprint(r.Factor)
		if r.Factor == 0 {
			label = "disabled"
		}
		fmt.Fprintf(&b, "%-16s %24d\n", label, r.UpdateNodes)
	}
	return results, b.String(), nil
}
