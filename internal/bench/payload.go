package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/persist"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// The payload experiment measures the flat columnar payload codec
// (internal/flatenc, frame version sld2) against the legacy whole-value
// gob codec (sld1) it replaced on the byte-shaped paths: memo
// persistence, dist framing, and checkpoints. Two views: a micro
// head-to-head of encode/decode cost across payload sizes, and the
// end-to-end wordcount slide loop run under each codec
// (persist.SetPayloadCodec), where the codec serves the memoized
// "map:"/"part:" state written on every slide.

// PayloadCodecCell is one (codec, payload size) micro measurement.
type PayloadCodecCell struct {
	Codec             string  `json:"codec"`
	Entries           int     `json:"entries"`
	FrameBytes        int     `json:"frameBytes"`
	EncodeNsPerOp     float64 `json:"encodeNsPerOp"`
	EncodeAllocsPerOp float64 `json:"encodeAllocsPerOp"`
	DecodeNsPerOp     float64 `json:"decodeNsPerOp"`
	DecodeAllocsPerOp float64 `json:"decodeAllocsPerOp"`
}

// PayloadSlideCell is the wordcount slide loop under one codec.
type PayloadSlideCell struct {
	Codec          string  `json:"codec"`
	Slides         int     `json:"slides"`
	AllocsPerSlide float64 `json:"allocsPerSlide"`
	NsPerSlide     float64 `json:"nsPerSlide"`
}

// PayloadResult is the full experiment, serialized to BENCH_payload.json.
type PayloadResult struct {
	Scale string `json:"scale"`
	Cells []PayloadCodecCell `json:"cells"`
	Slides []PayloadSlideCell `json:"slides"`
	// EncodeAllocReductionPct is the steady-state allocation reduction of
	// the flat encode path vs gob at the largest measured payload size.
	EncodeAllocReductionPct float64 `json:"encodeAllocReductionPct"`
	// RoundTripAllocReductionPct compares full encode+decode (flat view
	// walk vs gob decode into a map) at the largest payload size.
	RoundTripAllocReductionPct float64 `json:"roundTripAllocReductionPct"`
	DurationMs                 int64   `json:"durationMs"`
}

// payloadSizes is the entry-count axis of the micro head-to-head.
var payloadSizes = []int{4, 32, 256, 2048}

// benchPayload builds a wordcount-shaped payload: string keys, int64
// counts — the dominant shape on Slider's wire.
func benchPayload(entries int) mapreduce.Payload {
	p := make(mapreduce.Payload, entries)
	for i := 0; i < entries; i++ {
		p[fmt.Sprintf("word-%04d", i)] = int64(i*7 + 1)
	}
	return p
}

// measureGobCodec measures the legacy sld1 path: whole-payload gob encode
// and decode.
func measureGobCodec(entries int) (PayloadCodecCell, error) {
	cell := PayloadCodecCell{Codec: "gob", Entries: entries}
	p := benchPayload(entries)
	frame, err := persist.Encode(p)
	if err != nil {
		return cell, err
	}
	cell.FrameBytes = len(frame)
	reps := microReps(entries)
	cell.EncodeAllocsPerOp = testing.AllocsPerRun(reps, func() {
		if _, err := persist.Encode(p); err != nil {
			panic(err)
		}
	})
	cell.EncodeNsPerOp = timeOp(reps, func() {
		if _, err := persist.Encode(p); err != nil {
			panic(err)
		}
	})
	cell.DecodeAllocsPerOp = testing.AllocsPerRun(reps, func() {
		var out mapreduce.Payload
		if err := persist.Decode(frame, &out); err != nil {
			panic(err)
		}
	})
	cell.DecodeNsPerOp = timeOp(reps, func() {
		var out mapreduce.Payload
		if err := persist.Decode(frame, &out); err != nil {
			panic(err)
		}
	})
	return cell, nil
}

// measureFlatCodec measures the sld2 path at steady state: pooled-buffer
// append encode, and zero-copy view decode (the wire consumer's walk —
// no map is materialized).
func measureFlatCodec(entries int) (PayloadCodecCell, error) {
	cell := PayloadCodecCell{Codec: "flat", Entries: entries}
	p := benchPayload(entries)
	frame, err := persist.EncodePayload(p)
	if err != nil {
		return cell, err
	}
	cell.FrameBytes = len(frame)
	// Steady state: one warm buffer reused across ops, like the memo and
	// dist hot paths.
	buf := make([]byte, 0, 2*len(frame))
	if buf, err = persist.AppendPayload(buf[:0], p); err != nil {
		return cell, err
	}
	reps := microReps(entries)
	cell.EncodeAllocsPerOp = testing.AllocsPerRun(reps, func() {
		out, err := persist.AppendPayload(buf[:0], p)
		if err != nil {
			panic(err)
		}
		buf = out
	})
	cell.EncodeNsPerOp = timeOp(reps, func() {
		out, err := persist.AppendPayload(buf[:0], p)
		if err != nil {
			panic(err)
		}
		buf = out
	})
	// The decode walk uses the typed iterator: counting consumers read
	// int64 columns without boxing, so the whole walk allocates nothing.
	var sink int64
	walk := func() {
		view, err := persist.DecodePayloadView(frame)
		if err != nil {
			panic(err)
		}
		if _, err := view.ForEachInt64(func(_ string, n int64) bool {
			sink += n
			return true
		}); err != nil {
			panic(err)
		}
	}
	cell.DecodeAllocsPerOp = testing.AllocsPerRun(reps, walk)
	cell.DecodeNsPerOp = timeOp(reps, walk)
	_ = sink
	return cell, nil
}

// measureFlatMaterialize measures sld2 decode when the consumer does need
// a fresh mutable map (restore paths).
func measureFlatMaterialize(entries int) (PayloadCodecCell, error) {
	cell := PayloadCodecCell{Codec: "flat-materialize", Entries: entries}
	p := benchPayload(entries)
	frame, err := persist.EncodePayload(p)
	if err != nil {
		return cell, err
	}
	cell.FrameBytes = len(frame)
	reps := microReps(entries)
	cell.DecodeAllocsPerOp = testing.AllocsPerRun(reps, func() {
		if _, err := persist.DecodePayload(frame); err != nil {
			panic(err)
		}
	})
	cell.DecodeNsPerOp = timeOp(reps, func() {
		if _, err := persist.DecodePayload(frame); err != nil {
			panic(err)
		}
	})
	return cell, nil
}

// microReps scales repetition counts down for big payloads.
func microReps(entries int) int {
	if entries >= 1024 {
		return 20
	}
	return 100
}

// timeOp times fn over reps runs and returns ns/op.
func timeOp(reps int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// measurePayloadSlides drives the wordcount slide loop under one payload
// codec and returns per-slide averages, measureBackend-style.
func measurePayloadSlides(s Scale, codec persist.Codec, slides int) (PayloadSlideCell, error) {
	name := "flat"
	if codec == persist.CodecGob {
		name = "gob"
	}
	cell := PayloadSlideCell{Codec: name, Slides: slides}
	prev := persist.SetPayloadCodec(codec)
	defer persist.SetPayloadCodec(prev)

	text := workload.NewText(s.Text)
	window := 16
	cfg := sliderrt.Config{
		Mode:          sliderrt.Fixed,
		BucketSplits:  1,
		WindowBuckets: window,
		Memo:          memo.DefaultConfig(),
	}
	rt, err := sliderrt.New(wordCount(s.Partitions), cfg)
	if err != nil {
		return cell, err
	}
	if _, err := rt.Initial(text.Range(0, window)); err != nil {
		return cell, err
	}
	for i := 0; i < 2; i++ {
		if _, err := rt.Advance(1, text.Range(window+i, window+i+1)); err != nil {
			return cell, err
		}
	}
	next := window + 2

	quiesce()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < slides; i++ {
		if _, err := rt.Advance(1, text.Range(next, next+1)); err != nil {
			return cell, err
		}
		next++
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := float64(slides)
	cell.AllocsPerSlide = float64(after.Mallocs-before.Mallocs) / n
	cell.NsPerSlide = float64(elapsed.Nanoseconds()) / n
	return cell, nil
}

// RunPayload measures the gob-vs-flat head-to-head and renders a text
// table.
func RunPayload(s Scale) (*PayloadResult, string, error) {
	start := time.Now()
	out := &PayloadResult{Scale: "quick"}
	if s.WindowSplits >= 60 {
		out.Scale = "full"
	}
	for _, entries := range payloadSizes {
		gob, err := measureGobCodec(entries)
		if err != nil {
			return nil, "", fmt.Errorf("payload gob n=%d: %w", entries, err)
		}
		flat, err := measureFlatCodec(entries)
		if err != nil {
			return nil, "", fmt.Errorf("payload flat n=%d: %w", entries, err)
		}
		mat, err := measureFlatMaterialize(entries)
		if err != nil {
			return nil, "", fmt.Errorf("payload flat-materialize n=%d: %w", entries, err)
		}
		out.Cells = append(out.Cells, gob, flat, mat)
	}

	slides := 16
	if s.WindowSplits >= 60 {
		slides = 32
	}
	for _, codec := range []persist.Codec{persist.CodecGob, persist.CodecFlat} {
		cell, err := measurePayloadSlides(s, codec, slides)
		if err != nil {
			return nil, "", fmt.Errorf("payload slides: %w", err)
		}
		out.Slides = append(out.Slides, cell)
	}

	// Reduction figures at the largest payload size.
	biggest := payloadSizes[len(payloadSizes)-1]
	var gobBig, flatBig PayloadCodecCell
	for _, c := range out.Cells {
		if c.Entries != biggest {
			continue
		}
		switch c.Codec {
		case "gob":
			gobBig = c
		case "flat":
			flatBig = c
		}
	}
	if ga := gobBig.EncodeAllocsPerOp; ga > 0 {
		out.EncodeAllocReductionPct = 100 * (1 - flatBig.EncodeAllocsPerOp/ga)
	}
	if ga := gobBig.EncodeAllocsPerOp + gobBig.DecodeAllocsPerOp; ga > 0 {
		fa := flatBig.EncodeAllocsPerOp + flatBig.DecodeAllocsPerOp
		out.RoundTripAllocReductionPct = 100 * (1 - fa/ga)
	}
	out.DurationMs = time.Since(start).Milliseconds()

	var sb strings.Builder
	sb.WriteString("Payload codec: gob (sld1) vs flat (sld2), wordcount-shaped payloads\n")
	sb.WriteString("entries  codec              bytes   enc-ns  enc-allocs    dec-ns  dec-allocs\n")
	for _, c := range out.Cells {
		fmt.Fprintf(&sb, "%7d  %-16s %7d %8.0f  %10.1f  %8.0f  %10.1f\n",
			c.Entries, c.Codec, c.FrameBytes, c.EncodeNsPerOp, c.EncodeAllocsPerOp,
			c.DecodeNsPerOp, c.DecodeAllocsPerOp)
	}
	sb.WriteString("\nwordcount slide loop (memoized state through each codec)\n")
	sb.WriteString("codec    allocs/slide      ns/slide\n")
	for _, c := range out.Slides {
		fmt.Fprintf(&sb, "%-6s  %12.0f  %12.0f\n", c.Codec, c.AllocsPerSlide, c.NsPerSlide)
	}
	fmt.Fprintf(&sb, "\nflat vs gob at %d entries: encode allocs −%.1f%%, round trip −%.1f%%\n",
		biggest, out.EncodeAllocReductionPct, out.RoundTripAllocReductionPct)
	return out, sb.String(), nil
}

// WritePayloadJSON runs the head-to-head and writes BENCH_payload.json
// to w.
func WritePayloadJSON(w io.Writer, s Scale) error {
	res, _, err := RunPayload(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
