package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// The backends experiment compares the Fixed-mode aggregation backends
// head-to-head on wordcount: the rotating contraction tree (O(log w)
// combines per slide, §4.1) against the DABA Lite queue (worst-case O(1)
// combines per slide). Both serve the same windows and the same slides;
// the experiment records per-slide foreground combines, merges, wall
// time, and heap allocations across a sweep of window widths, exposing
// the crossover the asymptotics predict: the rotating tree's per-slide
// cost grows with the window while DABA's stays flat.

// wordCount is the canonical streaming benchmark job.
func wordCount(partitions int) *mapreduce.Job {
	sum := func(_ string, values []mapreduce.Value) mapreduce.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &mapreduce.Job{
		Name:       "wordcount",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("wordcount: record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

// BackendCell is one (window, backend) measurement, normalized per slide.
type BackendCell struct {
	Backend          string  `json:"backend"`
	WindowBuckets    int     `json:"windowBuckets"`
	Slides           int     `json:"slides"`
	MergesPerSlide   float64 `json:"mergesPerSlide"`
	CombinesPerSlide float64 `json:"combinesPerSlide"`
	AllocsPerSlide   float64 `json:"allocsPerSlide"`
	NsPerSlide       float64 `json:"nsPerSlide"`
}

// BackendsResult is the full head-to-head sweep, serialized to
// BENCH_daba.json.
type BackendsResult struct {
	Scale      string        `json:"scale"`
	App        string        `json:"app"`
	Slides     int           `json:"slidesPerWindow"`
	Cells      []BackendCell `json:"cells"`
	DurationMs int64         `json:"durationMs"`
}

// backendWindows is the window-width axis (in buckets, one split per
// bucket). Wide enough that the rotating tree's log factor is visible.
func backendWindows(s Scale) []int {
	if s.WindowSplits >= 60 {
		return []int{8, 16, 32, 64, 128, 256}
	}
	return []int{8, 16, 32, 64}
}

// measureBackend drives one backend over one window width and returns its
// per-slide averages. Every slide replaces one bucket; the window never
// changes width, so the two backends see byte-identical schedules.
func measureBackend(s Scale, backend sliderrt.Backend, window, slides int) (BackendCell, error) {
	cell := BackendCell{Backend: backend.String(), WindowBuckets: window, Slides: slides}
	text := workload.NewText(s.Text)
	cfg := sliderrt.Config{
		Mode:          sliderrt.Fixed,
		Backend:       backend,
		BucketSplits:  1,
		WindowBuckets: window,
		Memo:          memo.DefaultConfig(),
	}
	rt, err := sliderrt.New(wordCount(s.Partitions), cfg)
	if err != nil {
		return cell, err
	}
	if _, err := rt.Initial(text.Range(0, window)); err != nil {
		return cell, err
	}
	// Warm the memo store and size caches so the measured slides reflect
	// steady state, not first-touch costs.
	for i := 0; i < 2; i++ {
		if _, err := rt.Advance(1, text.Range(window+i, window+i+1)); err != nil {
			return cell, err
		}
	}
	next := window + 2

	var merges, combines int64
	quiesce()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < slides; i++ {
		res, err := rt.Advance(1, text.Range(next, next+1))
		if err != nil {
			return cell, err
		}
		next++
		merges += res.TreeStats.Merges + res.TreeStatsBackground.Merges
		combines += res.Report.Counters.CombineCalls
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := float64(slides)
	cell.MergesPerSlide = float64(merges) / n
	cell.CombinesPerSlide = float64(combines) / n
	cell.AllocsPerSlide = float64(after.Mallocs-before.Mallocs) / n
	cell.NsPerSlide = float64(elapsed.Nanoseconds()) / n
	return cell, nil
}

// RunBackends measures the DABA-vs-rotating sweep and renders a text
// table.
func RunBackends(s Scale) (*BackendsResult, string, error) {
	start := time.Now()
	slides := 16
	if s.WindowSplits >= 60 {
		slides = 32
	}
	out := &BackendsResult{Scale: "quick", App: "wordcount", Slides: slides}
	if s.WindowSplits >= 60 {
		out.Scale = "full"
	}
	for _, w := range backendWindows(s) {
		for _, b := range []sliderrt.Backend{sliderrt.BackendDaba, sliderrt.BackendRotating} {
			cell, err := measureBackend(s, b, w, slides)
			if err != nil {
				return nil, "", fmt.Errorf("backends %s w=%d: %w", b, w, err)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	out.DurationMs = time.Since(start).Milliseconds()

	var sb strings.Builder
	sb.WriteString("Backends: DABA vs rotating tree, wordcount, per-slide averages\n")
	sb.WriteString("window   backend    merges  combines    allocs        ns\n")
	for _, c := range out.Cells {
		fmt.Fprintf(&sb, "%6d   %-8s %8.1f  %8.1f  %8.1f  %8.0f\n",
			c.WindowBuckets, c.Backend, c.MergesPerSlide, c.CombinesPerSlide, c.AllocsPerSlide, c.NsPerSlide)
	}
	return out, sb.String(), nil
}

// Find returns the cell for (backend, window), or false.
func (r *BackendsResult) Find(backend string, window int) (BackendCell, bool) {
	for _, c := range r.Cells {
		if c.Backend == backend && c.WindowBuckets == window {
			return c, true
		}
	}
	return BackendCell{}, false
}

// WriteBackendsJSON runs the sweep and writes BENCH_daba.json to w.
func WriteBackendsJSON(w io.Writer, s Scale) error {
	res, _, err := RunBackends(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
