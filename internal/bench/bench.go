// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§7–§8), each regenerating the same
// rows/series the paper reports, using the micro-benchmark applications
// over synthetic workloads and the simulated cluster.
//
// Absolute numbers differ from the paper's 25-machine testbed by design;
// the reproduction targets are the shapes: who wins, by roughly what
// factor, and where the crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"slider/internal/apps"
	"slider/internal/cluster"
	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/scheduler"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// Scale sizes the experiments. WindowSplits must be divisible by 20 so
// that every change percentage in {5,10,15,20,25} is a whole number of
// splits.
type Scale struct {
	// WindowSplits is the micro-benchmark window size W in splits.
	WindowSplits int
	// Text parameterizes the data-intensive apps' corpus.
	Text workload.TextConfig
	// Points parameterizes the compute-intensive apps' stream.
	Points workload.PointsConfig
	// Cluster is the simulated cluster for "time" measurements.
	Cluster cluster.Config
	// Partitions is the reduce parallelism of every job.
	Partitions int
	// KMeansK and KNNK size the compute-intensive apps.
	KMeansK int
	KNNK    int
}

// Quick returns a small scale for tests and smoke runs.
func Quick() Scale {
	return Scale{
		WindowSplits: 20,
		Text:         workload.TextConfig{Seed: 42, LinesPerSplit: 15, WordsPerLine: 8, Vocabulary: 500, ZipfS: 1.2},
		Points:       workload.PointsConfig{Seed: 42, PointsPerSplit: 60, Dim: 20},
		Cluster:      cluster.DefaultConfig(),
		Partitions:   4,
		KMeansK:      8,
		KNNK:         8,
	}
}

// Full returns the scale used for the recorded experiments. Larger
// per-split work keeps the wall-clock work measurements well above
// scheduling noise.
func Full() Scale {
	return Scale{
		WindowSplits: 60,
		// The vocabulary/skew pair approximates natural text: frequent
		// word pairs repeat often enough that combining aggregates
		// meaningfully (co-occurrence payloads shrink relative to
		// input), as with the paper's Wikipedia dataset.
		Text:       workload.TextConfig{Seed: 42, LinesPerSplit: 150, WordsPerLine: 12, Vocabulary: 1200, ZipfS: 1.3},
		Points:     workload.PointsConfig{Seed: 42, PointsPerSplit: 500, Dim: 50},
		Cluster:    cluster.DefaultConfig(),
		Partitions: 8,
		KMeansK:    20,
		KNNK:       16,
	}
}

// App is one benchmark application: a job factory plus its input stream.
type App struct {
	// Name matches the paper's label.
	Name string
	// NewJob builds a fresh job instance.
	NewJob func() *mapreduce.Job
	// Gen returns input splits [lo, hi).
	Gen func(lo, hi int) []mapreduce.Split
	// ComputeIntensive marks K-Means and KNN.
	ComputeIntensive bool
}

// MicroApps returns the five micro-benchmark applications of §7.1.
func MicroApps(s Scale) []App {
	text := workload.NewText(s.Text)
	points := workload.NewPoints(s.Points)
	queries := points.QueryPoints(s.KNNK)
	return []App{
		{
			Name:             "K-Means",
			NewJob:           func() *mapreduce.Job { return apps.KMeans(s.Partitions, s.KMeansK, s.Points.Dim, 7) },
			Gen:              points.Range,
			ComputeIntensive: true,
		},
		{
			Name:   "HCT",
			NewJob: func() *mapreduce.Job { return apps.HCT(s.Partitions) },
			Gen:    text.Range,
		},
		{
			Name:             "KNN",
			NewJob:           func() *mapreduce.Job { return apps.KNN(s.Partitions, s.KNNK, queries) },
			Gen:              points.Range,
			ComputeIntensive: true,
		},
		{
			Name:   "Matrix",
			NewJob: func() *mapreduce.Job { return apps.Matrix(s.Partitions) },
			Gen:    text.Range,
		},
		{
			Name:   "subStr",
			NewJob: func() *mapreduce.Job { return apps.SubStr(s.Partitions) },
			Gen:    text.Range,
		},
	}
}

// Measurement is the full set of observations for one (app, mode, pct)
// cell of the Figure 7/8/9/13 sweeps.
type Measurement struct {
	App  string
	Mode sliderrt.Mode
	Pct  int

	// Incremental-run observations.
	ScratchReport metrics.Report // recompute over the slid window
	StrawReport   metrics.Report // strawman incremental run
	SliderReport  metrics.Report // slider incremental run
	ScratchTime   time.Duration
	StrawTime     time.Duration
	SliderTime    time.Duration

	// Initial-run observations (Figure 13).
	VanillaInitReport metrics.Report
	SliderInitReport  metrics.Report
	VanillaInitTime   time.Duration
	SliderInitTime    time.Duration
	SpaceBytes        int64
	InputBytes        int64
}

// WorkSpeedupVsScratch is the Figure 7 work ratio.
func (m Measurement) WorkSpeedupVsScratch() float64 {
	return metrics.Speedup(m.ScratchReport.Work, m.SliderReport.Work)
}

// TimeSpeedupVsScratch is the Figure 7 time ratio.
func (m Measurement) TimeSpeedupVsScratch() float64 {
	return metrics.Speedup(m.ScratchTime, m.SliderTime)
}

// WorkSpeedupVsStrawman is the Figure 8 work ratio.
func (m Measurement) WorkSpeedupVsStrawman() float64 {
	return metrics.Speedup(m.StrawReport.Work, m.SliderReport.Work)
}

// TimeSpeedupVsStrawman is the Figure 8 time ratio.
func (m Measurement) TimeSpeedupVsStrawman() float64 {
	return metrics.Speedup(m.StrawTime, m.SliderTime)
}

// modeConfig builds the slider configuration for one cell.
func modeConfig(mode sliderrt.Mode, engine sliderrt.Engine, delta, window int, nodes int) sliderrt.Config {
	cfg := sliderrt.Config{Mode: mode, Engine: engine}
	cfg.Memo = memo.DefaultConfig()
	if nodes > 0 {
		cfg.Memo.Nodes = nodes
	}
	if mode == sliderrt.Fixed {
		cfg.BucketSplits = delta
		cfg.WindowBuckets = window / delta
		if engine != sliderrt.Strawman {
			// The paper's Fixed-mode figures measure the rotating
			// contraction tree; pin it so backend auto-selection (which
			// prefers the DABA queue for plain fixed-width windows) cannot
			// change what these experiments measure. The DABA-vs-rotating
			// comparison has its own experiment (RunBackends /
			// BENCH_daba.json).
			cfg.Backend = sliderrt.BackendRotating
		}
	}
	return cfg
}

// estimateInputBytes approximates the raw input volume of a window.
func estimateInputBytes(splits []mapreduce.Split) int64 {
	var total int64
	for _, s := range splits {
		for _, r := range s.Records {
			switch x := r.(type) {
			case string:
				total += int64(len(x)) + 1
			case []float64:
				total += int64(8 * len(x))
			default:
				total += 32
			}
		}
	}
	return total
}

// sameOutput verifies two job outputs agree. Floating-point outputs are
// compared with a relative tolerance: contraction trees re-associate
// additions, so float sums differ from the sequential baseline in the
// last bits.
func sameOutput(a, b mapreduce.Output) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !sameValue(av, bv) {
			return false
		}
	}
	return true
}

func sameValue(a, b mapreduce.Value) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && closeEnough(x, y)
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !closeEnough(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return mapreduce.Fingerprint(a) == mapreduce.Fingerprint(b)
	}
}

func closeEnough(x, y float64) bool {
	diff := x - y
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if ax := abs64(x); ax > scale {
		scale = ax
	}
	if ay := abs64(y); ay > scale {
		scale = ay
	}
	return diff <= 1e-9*scale
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// simulate turns a report into a makespan under the given policy.
func simulate(s Scale, r metrics.Report, policy cluster.Policy) time.Duration {
	return cluster.NewSimulator(s.Cluster).Run(r.Tasks, policy).Makespan
}

// quiesce runs the garbage collector so that the next measured run does
// not absorb a GC pause triggered by a previous run's allocations —
// material on small machines where tasks are microsecond-scale.
func quiesce() { runtime.GC() }

// RunCell measures one (app, mode, pct) cell: it performs initial runs
// for the slider and strawman engines, one incremental run each, and a
// recompute-from-scratch run over the slid window, verifying that all
// three outputs agree.
func RunCell(s Scale, app App, mode sliderrt.Mode, pct int) (Measurement, error) {
	m := Measurement{App: app.Name, Mode: mode, Pct: pct}
	w := s.WindowSplits
	delta := w * pct / 100
	if delta < 1 {
		return m, fmt.Errorf("bench: pct %d too small for window %d", pct, w)
	}
	if mode == sliderrt.Fixed {
		// Rotating trees need the window to be a whole number of
		// buckets; round it down to the nearest multiple of the slide.
		w = delta * (w / delta)
	}
	initial := app.Gen(0, w)
	add := app.Gen(w, w+delta)
	drop := delta
	if mode == sliderrt.Append {
		drop = 0
	}
	newWindow := append(append([]mapreduce.Split{}, initial[drop:]...), add...)
	m.InputBytes = estimateInputBytes(initial)

	// Slider engine.
	sliderRT, err := sliderrt.New(app.NewJob(), modeConfig(mode, sliderrt.SelfAdjusting, delta, w, s.Cluster.Nodes))
	if err != nil {
		return m, err
	}
	quiesce()
	initRes, err := sliderRT.Initial(initial)
	if err != nil {
		return m, fmt.Errorf("%s/%v/%d%%: slider initial: %w", app.Name, mode, pct, err)
	}
	m.SliderInitReport = initRes.Report
	m.SliderInitTime = simulate(s, initRes.Report, scheduler.Hybrid{})
	quiesce()
	advRes, err := sliderRT.Advance(drop, add)
	if err != nil {
		return m, fmt.Errorf("%s/%v/%d%%: slider advance: %w", app.Name, mode, pct, err)
	}
	m.SliderReport = advRes.Report
	m.SliderTime = simulate(s, advRes.Report, scheduler.Hybrid{})
	m.SpaceBytes = advRes.SpaceBytes

	// Strawman engine.
	strawRT, err := sliderrt.New(app.NewJob(), modeConfig(mode, sliderrt.Strawman, delta, w, s.Cluster.Nodes))
	if err != nil {
		return m, err
	}
	if _, err := strawRT.Initial(initial); err != nil {
		return m, fmt.Errorf("%s/%v/%d%%: strawman initial: %w", app.Name, mode, pct, err)
	}
	quiesce()
	strawRes, err := strawRT.Advance(drop, add)
	if err != nil {
		return m, fmt.Errorf("%s/%v/%d%%: strawman advance: %w", app.Name, mode, pct, err)
	}
	m.StrawReport = strawRes.Report
	m.StrawTime = simulate(s, strawRes.Report, scheduler.Hybrid{})

	// Recompute-from-scratch baselines: over the slid window (the
	// incremental comparison) and over the initial window (Figure 13).
	quiesce()
	rec := metrics.NewRecorder()
	scratchOut, err := mapreduce.RunScratch(app.NewJob(), newWindow, 0, rec)
	if err != nil {
		return m, err
	}
	m.ScratchReport = rec.Snapshot()
	m.ScratchTime = simulate(s, m.ScratchReport, scheduler.Baseline{})

	quiesce()
	recInit := metrics.NewRecorder()
	if _, err := mapreduce.RunScratch(app.NewJob(), initial, 0, recInit); err != nil {
		return m, err
	}
	m.VanillaInitReport = recInit.Snapshot()
	m.VanillaInitTime = simulate(s, m.VanillaInitReport, scheduler.Baseline{})

	// Variance reduction for the initial-run *time* comparison: Slider's
	// initial map tasks run the same computation as vanilla's, so rebuild
	// Slider's task list with vanilla's map measurements (makespans are
	// max-statistics and very sensitive to one slow re-measurement).
	adjTasks := make([]metrics.Task, 0, len(m.SliderInitReport.Tasks))
	si := 0
	sliderMapTasks := make([]metrics.Task, 0)
	for _, t := range m.SliderInitReport.Tasks {
		if t.Phase == metrics.PhaseMap {
			sliderMapTasks = append(sliderMapTasks, t)
		} else {
			adjTasks = append(adjTasks, t)
		}
	}
	for _, t := range m.VanillaInitReport.Tasks {
		if t.Phase != metrics.PhaseMap {
			continue
		}
		if si < len(sliderMapTasks) {
			// Keep Slider's locality hint; take vanilla's measured cost
			// plus the memoization write Slider's task additionally pays.
			t.PreferredNode = sliderMapTasks[si].PreferredNode
			si++
		}
		adjTasks = append(adjTasks, t)
	}
	if len(sliderMapTasks) > 0 {
		perTaskWrite := time.Duration(m.SliderInitReport.Counters.WriteTime /
			int64(len(sliderMapTasks)))
		for i := range adjTasks {
			if adjTasks[i].Phase == metrics.PhaseMap {
				adjTasks[i].Cost += perTaskWrite
			}
		}
	}
	adjReport := m.SliderInitReport
	adjReport.Tasks = adjTasks
	m.SliderInitTime = simulate(s, adjReport, scheduler.Hybrid{})

	if !sameOutput(advRes.Output, scratchOut) {
		return m, fmt.Errorf("%s/%v/%d%%: slider output diverges from scratch", app.Name, mode, pct)
	}
	if !sameOutput(strawRes.Output, scratchOut) {
		return m, fmt.Errorf("%s/%v/%d%%: strawman output diverges from scratch", app.Name, mode, pct)
	}
	return m, nil
}

// Sweep holds the full Figure 7/8/9/13 measurement grid.
type Sweep struct {
	Scale Scale
	Cells []Measurement
}

// Pcts is the change-percentage axis of Figures 7 and 8.
var Pcts = []int{5, 10, 15, 20, 25}

// Modes is the window-mode axis.
var Modes = []sliderrt.Mode{sliderrt.Append, sliderrt.Fixed, sliderrt.Variable}

// RunSweep measures every (app, mode, pct) cell.
func RunSweep(s Scale, appList []App, pcts []int) (*Sweep, error) {
	sweep := &Sweep{Scale: s}
	for _, app := range appList {
		for _, mode := range Modes {
			for _, pct := range pcts {
				cell, err := RunCell(s, app, mode, pct)
				if err != nil {
					return nil, err
				}
				sweep.Cells = append(sweep.Cells, cell)
			}
		}
	}
	return sweep, nil
}

// Find returns the cell for (app, mode, pct), or false.
func (sw *Sweep) Find(app string, mode sliderrt.Mode, pct int) (Measurement, bool) {
	for _, c := range sw.Cells {
		if c.App == app && c.Mode == mode && c.Pct == pct {
			return c, true
		}
	}
	return Measurement{}, false
}
