package bench

import (
	"fmt"
	"io"
	"strings"
)

// Experiments names every runnable experiment.
var Experiments = []string{
	"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"table1", "table2", "table3", "table4", "table5",
	"ablation", "backends", "payload", "outoforder",
}

// Run executes the selected experiments at the given scale, streaming
// formatted results to w. Selecting "all" (or nil) runs everything.
func Run(w io.Writer, s Scale, selected []string) error {
	want := make(map[string]bool)
	if len(selected) == 0 {
		want["all"] = true
	}
	for _, e := range selected {
		want[strings.ToLower(strings.TrimSpace(e))] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	appList := MicroApps(s)

	var sweep *Sweep
	if on("fig7") || on("fig8") || on("fig9") || on("fig13") {
		var err error
		sweep, err = RunSweep(s, appList, Pcts)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if on("fig7") {
		fmt.Fprintln(w, Figure7(sweep))
	}
	if on("fig8") {
		fmt.Fprintln(w, Figure8(sweep))
	}
	if on("fig9") {
		fmt.Fprintln(w, Figure9(sweep))
	}
	if on("fig10") {
		_, text, err := Figure10(s)
		if err != nil {
			return fmt.Errorf("figure 10: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("fig11") {
		_, text, err := Figure11(s, appList)
		if err != nil {
			return fmt.Errorf("figure 11: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("fig12") {
		_, text, err := Figure12(s, appList)
		if err != nil {
			return fmt.Errorf("figure 12: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("fig13") {
		fmt.Fprintln(w, Figure13(sweep))
	}
	if on("table1") {
		_, text, err := Table1(s, appList)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("table2") {
		_, text, err := Table2(s, appList)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("table3") {
		_, text, err := Table3(s)
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("table4") {
		_, text, err := Table4(s)
		if err != nil {
			return fmt.Errorf("table 4: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("table5") {
		_, text, err := Table5(s)
		if err != nil {
			return fmt.Errorf("table 5: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("backends") {
		_, text, err := RunBackends(s)
		if err != nil {
			return fmt.Errorf("backends: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("payload") {
		_, text, err := RunPayload(s)
		if err != nil {
			return fmt.Errorf("payload: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("outoforder") {
		_, text, err := RunOutOfOrder(s)
		if err != nil {
			return fmt.Errorf("outoforder: %w", err)
		}
		fmt.Fprintln(w, text)
	}
	if on("ablation") {
		for _, app := range appList {
			if app.Name != "Matrix" {
				continue
			}
			_, text, err := AblationBucket(s, app)
			if err != nil {
				return fmt.Errorf("ablation bucket: %w", err)
			}
			fmt.Fprintln(w, text)
			_, text, err = AblationRebuild(s, app)
			if err != nil {
				return fmt.Errorf("ablation rebuild: %w", err)
			}
			fmt.Fprintln(w, text)
			_, text, err = AblationWindowScale(s, app)
			if err != nil {
				return fmt.Errorf("ablation window scale: %w", err)
			}
			fmt.Fprintln(w, text)
		}
	}
	return nil
}
