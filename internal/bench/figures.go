package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"slider/internal/core"
	"slider/internal/mapreduce"
	"slider/internal/metrics"
	"slider/internal/pig"
	"slider/internal/scheduler"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// formatSpeedupGrid renders one subfigure: apps × change%.
func formatSpeedupGrid(title string, sw *Sweep, mode sliderrt.Mode, f func(Measurement) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "app\\change")
	for _, pct := range Pcts {
		fmt.Fprintf(&b, "%8d%%", pct)
	}
	b.WriteByte('\n')
	appNames := sw.appNames()
	for _, app := range appNames {
		fmt.Fprintf(&b, "%-10s", app)
		for _, pct := range Pcts {
			if c, ok := sw.Find(app, mode, pct); ok {
				fmt.Fprintf(&b, "%8.2fx", f(c))
			} else {
				fmt.Fprintf(&b, "%9s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// appNames lists the sweep's applications in first-seen order.
func (sw *Sweep) appNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range sw.Cells {
		if !seen[c.App] {
			seen[c.App] = true
			names = append(names, c.App)
		}
	}
	return names
}

// Figure7 renders the six panels of Figure 7: work and time speedups of
// Slider vs recomputing from scratch, per window mode.
func Figure7(sw *Sweep) string {
	var b strings.Builder
	b.WriteString("=== Figure 7: Slider speedup vs recompute-from-scratch ===\n\n")
	for _, mode := range Modes {
		b.WriteString(formatSpeedupGrid(
			fmt.Sprintf("(work, %s mode)", modeName(mode)), sw, mode,
			Measurement.WorkSpeedupVsScratch))
		b.WriteByte('\n')
	}
	for _, mode := range Modes {
		b.WriteString(formatSpeedupGrid(
			fmt.Sprintf("(time, %s mode)", modeName(mode)), sw, mode,
			Measurement.TimeSpeedupVsScratch))
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure8 renders Figure 8: speedups of the self-adjusting trees vs the
// memoization-based strawman.
func Figure8(sw *Sweep) string {
	var b strings.Builder
	b.WriteString("=== Figure 8: Slider speedup vs strawman (memoization) ===\n\n")
	for _, mode := range Modes {
		b.WriteString(formatSpeedupGrid(
			fmt.Sprintf("(work, %s mode)", modeName(mode)), sw, mode,
			Measurement.WorkSpeedupVsStrawman))
		b.WriteByte('\n')
	}
	for _, mode := range Modes {
		b.WriteString(formatSpeedupGrid(
			fmt.Sprintf("(time, %s mode)", modeName(mode)), sw, mode,
			Measurement.TimeSpeedupVsStrawman))
		b.WriteByte('\n')
	}
	return b.String()
}

func modeName(m sliderrt.Mode) string {
	switch m {
	case sliderrt.Append:
		return "Append-only (A)"
	case sliderrt.Fixed:
		return "Fixed-width (F)"
	default:
		return "Variable-width (V)"
	}
}

// Figure9 renders the normalized execution breakdown for 5% and 25%
// input change: Slider's map work as a percentage of vanilla map work,
// and Slider's contraction+reduce as a percentage of vanilla reduce.
func Figure9(sw *Sweep) string {
	var b strings.Builder
	b.WriteString("=== Figure 9: work breakdown, normalized to vanilla (H=100%) ===\n")
	for _, pct := range []int{5, 25} {
		fmt.Fprintf(&b, "\n(%d%% change)\n", pct)
		fmt.Fprintf(&b, "%-10s %-18s %12s %22s\n", "app", "mode", "map(%ofH)", "contraction+red(%ofH)")
		for _, app := range sw.appNames() {
			for _, mode := range Modes {
				c, ok := sw.Find(app, mode, pct)
				if !ok {
					continue
				}
				hMap := c.ScratchReport.PhaseWork[metrics.PhaseMap]
				hRed := c.ScratchReport.PhaseWork[metrics.PhaseReduce]
				sMap := c.SliderReport.PhaseWork[metrics.PhaseMap]
				sCR := c.SliderReport.PhaseWork[metrics.PhaseContraction] +
					c.SliderReport.PhaseWork[metrics.PhaseReduce]
				mapPct, crPct := 0.0, 0.0
				if hMap > 0 {
					mapPct = 100 * float64(sMap) / float64(hMap)
				}
				if hRed > 0 {
					crPct = 100 * float64(sCR) / float64(hRed)
				}
				fmt.Fprintf(&b, "%-10s %-18s %11.1f%% %21.1f%%\n",
					app, modeName(mode), mapPct, crPct)
			}
		}
	}
	return b.String()
}

// Figure13 renders the initial-run overheads: work, time, and space.
func Figure13(sw *Sweep) string {
	var b strings.Builder
	b.WriteString("=== Figure 13: initial-run overheads vs vanilla ===\n")
	fmt.Fprintf(&b, "%-10s %-18s %12s %12s %14s\n",
		"app", "mode", "work-ovh", "time-ovh", "space (x input)")
	for _, app := range sw.appNames() {
		for _, mode := range Modes {
			c, ok := sw.Find(app, mode, 5)
			if !ok {
				continue
			}
			// Variance reduction: Slider's initial map phase is the
			// same computation as vanilla's plus the memoization
			// writes, so substitute vanilla's map measurement plus the
			// recorded write time for Slider's own noisy re-measurement.
			adjSlider := c.SliderInitReport.Work -
				c.SliderInitReport.PhaseWork[metrics.PhaseMap] +
				c.VanillaInitReport.PhaseWork[metrics.PhaseMap] +
				time.Duration(c.SliderInitReport.Counters.WriteTime)
			workOvh := overheadPct(c.VanillaInitReport.Work, adjSlider)
			timeOvh := overheadPct(c.VanillaInitTime, c.SliderInitTime)
			space := float64(c.SpaceBytes) / float64(maxInt64(1, c.InputBytes))
			fmt.Fprintf(&b, "%-10s %-18s %11.1f%% %11.1f%% %14.2fx\n",
				app, modeName(mode), workOvh, timeOvh, space)
		}
	}
	return b.String()
}

func overheadPct(base, with time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(with) - float64(base)) / float64(base)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Figure10Result holds one (query, mode) cell of the query-processing
// benchmark.
type Figure10Result struct {
	Query       string
	Mode        sliderrt.Mode
	Stages      int
	WorkSpeedup float64
	TimeSpeedup float64
}

// pigmixQueries is the PigMix-style suite: pipelines of increasing depth
// exercising join, grouping, distinct, and ordering.
var pigmixQueries = []struct {
	name string
	src  string
}{
	{"L1 region totals", `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
views = FILTER raw BY action == 'view';
joined = JOIN views BY user, 'users' BY user;
grouped = GROUP joined BY region;
agg = FOREACH grouped GENERATE group AS region, COUNT(*) AS views, SUM(timespent) AS total;
ordered = ORDER agg BY total DESC;
STORE ordered INTO 'out';
`},
	{"L2 page reach", `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
pairs = FOREACH raw GENERATE page, user;
uniq = DISTINCT pairs;
grouped = GROUP uniq BY page;
reach = FOREACH grouped GENERATE group AS page, COUNT(*) AS users;
ordered = ORDER reach BY users DESC;
top = LIMIT ordered 10;
STORE top INTO 'out';
`},
	{"L3 top spenders", `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
buys = FILTER raw BY action == 'purchase';
g1 = GROUP buys BY user;
peruser = FOREACH g1 GENERATE group AS user, SUM(revenue) AS spent, COUNT(*) AS orders;
big = FILTER peruser BY spent > 50;
g2 = GROUP big BY user;
agg = FOREACH g2 GENERATE group AS user, MAX(spent) AS spent;
ordered = ORDER agg BY spent DESC;
top = LIMIT ordered 15;
STORE top INTO 'out';
`},
}

// Figure10 runs the PigMix-style query suite in all three window modes
// with a 5% input change and reports speedups vs recomputing each
// pipeline from scratch.
func Figure10(s Scale) ([]Figure10Result, string, error) {
	gen := workload.NewPigMix(workload.PigMixConfig{
		Seed: 42, Users: 400, Pages: 150,
		RowsPerSplit: s.Text.LinesPerSplit * 6,
	})
	tblSchema, tblRows := gen.UserTable()
	table := &pig.Table{Schema: tblSchema}
	for _, r := range tblRows {
		table.Rows = append(table.Rows, pig.Row(r))
	}

	w := s.WindowSplits
	delta := w * 5 / 100
	if delta < 1 {
		delta = 1
	}
	var results []Figure10Result
	for _, q := range pigmixQueries {
		script, err := pig.Parse(q.src)
		if err != nil {
			return nil, "", fmt.Errorf("figure10 %s: %w", q.name, err)
		}
		plan, err := pig.Compile(script, map[string]*pig.Table{"users": table}, s.Partitions)
		if err != nil {
			return nil, "", fmt.Errorf("figure10 %s: %w", q.name, err)
		}
		for _, mode := range Modes {
			cfg := pig.PipelineConfig{Mode: mode}
			cfg.Memo = modeConfig(mode, sliderrt.SelfAdjusting, delta, w, s.Cluster.Nodes).Memo
			if mode == sliderrt.Fixed {
				cfg.BucketSplits = delta
				cfg.WindowBuckets = w / delta
			}
			pl, err := pig.NewPipeline(plan, cfg)
			if err != nil {
				return nil, "", err
			}
			window := gen.Range(0, w)
			if _, err := pl.Initial(window); err != nil {
				return nil, "", err
			}
			drop := delta
			if mode == sliderrt.Append {
				drop = 0
			}
			add := gen.Range(w, w+delta)
			quiesce()
			res, err := pl.Advance(drop, add)
			if err != nil {
				return nil, "", err
			}
			newWindow := append(append([]mapreduce.Split{}, window[drop:]...), add...)
			quiesce()
			rec := metrics.NewRecorder()
			want, _, err := pig.RunScratch(plan, newWindow, rec)
			if err != nil {
				return nil, "", err
			}
			if !rowsApproxEqual(res.Rows, want) {
				return nil, "", fmt.Errorf("figure10 %s: %v incremental rows diverge from scratch", q.name, mode)
			}
			scratchReport := rec.Snapshot()
			results = append(results, Figure10Result{
				Query:       q.name,
				Mode:        mode,
				Stages:      len(plan.Stages),
				WorkSpeedup: metrics.Speedup(scratchReport.Work, res.Report.Work),
				TimeSpeedup: metrics.Speedup(
					simulate(s, scratchReport, scheduler.Baseline{}),
					simulate(s, res.Report, scheduler.Hybrid{})),
			})
		}
	}
	var b strings.Builder
	b.WriteString("=== Figure 10: query processing (PigMix-style suite, 5% change) ===\n")
	fmt.Fprintf(&b, "%-18s %7s %-18s %12s %12s\n", "query", "stages", "mode", "work", "time")
	workAvg := make(map[sliderrt.Mode]float64)
	timeAvg := make(map[sliderrt.Mode]float64)
	for _, r := range results {
		fmt.Fprintf(&b, "%-18s %7d %-18s %11.2fx %11.2fx\n",
			r.Query, r.Stages, modeName(r.Mode), r.WorkSpeedup, r.TimeSpeedup)
		workAvg[r.Mode] += r.WorkSpeedup
		timeAvg[r.Mode] += r.TimeSpeedup
	}
	nq := float64(len(pigmixQueries))
	b.WriteString("\n(average across queries)\n")
	for _, mode := range Modes {
		fmt.Fprintf(&b, "%-26s %-18s %11.2fx %11.2fx\n", "", modeName(mode),
			workAvg[mode]/nq, timeAvg[mode]/nq)
	}
	return results, b.String(), nil
}

// rowsApproxEqual compares two query outputs with a floating-point
// tolerance: contraction trees re-associate float additions, so SUM/AVG
// columns differ from the sequential baseline in the last bits (and rows
// whose sort keys are within tolerance may swap positions).
func rowsApproxEqual(a, b []pig.Row) bool {
	if len(a) != len(b) {
		return false
	}
	matched := make([]bool, len(b))
outer:
	for _, ra := range a {
		for j, rb := range b {
			if !matched[j] && rowApprox(ra, rb) {
				matched[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func rowApprox(a, b pig.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		af, aok := a[i].(float64)
		bf, bok := b[i].(float64)
		if aok && bok {
			if !closeEnough(af, bf) {
				return false
			}
			continue
		}
		if pig.ToString(a[i]) != pig.ToString(b[i]) {
			return false
		}
	}
	return true
}

// Figure11Result holds one app's split-processing measurements.
type Figure11Result struct {
	App        string
	Foreground float64 // foreground time, normalized to non-split update = 1
	Background float64 // background time, same normalization
}

// Figure11 measures the effectiveness of split processing (append-only
// and fixed-width, 5% change): foreground and background update cost
// normalized to the non-split update cost.
func Figure11(s Scale, appList []App) (map[sliderrt.Mode][]Figure11Result, string, error) {
	out := make(map[sliderrt.Mode][]Figure11Result)
	w := s.WindowSplits
	delta := w * 5 / 100
	for _, mode := range []sliderrt.Mode{sliderrt.Append, sliderrt.Fixed} {
		for _, app := range appList {
			drop := delta
			if mode == sliderrt.Append {
				drop = 0
			}
			initial := app.Gen(0, w)
			add := app.Gen(w, w+delta)

			runOnce := func(split bool) (fg, bg time.Duration, err error) {
				cfg := modeConfig(mode, sliderrt.SelfAdjusting, delta, w, s.Cluster.Nodes)
				cfg.SplitProcessing = split
				rt, err := sliderrt.New(app.NewJob(), cfg)
				if err != nil {
					return 0, 0, err
				}
				if _, err := rt.Initial(initial); err != nil {
					return 0, 0, err
				}
				// Take the median of several slides so wall-clock noise
				// on the microsecond-scale update path washes out.
				const slides = 5
				fgs := make([]time.Duration, 0, slides)
				bgs := make([]time.Duration, 0, slides)
				next := w
				for i := 0; i < slides; i++ {
					moreAdd := add
					if i > 0 {
						moreAdd = app.Gen(next, next+delta)
					}
					next += delta
					res, err := rt.Advance(drop, moreAdd)
					if err != nil {
						return 0, 0, err
					}
					// The split-processing comparison is about the
					// update (contraction + reduce) path; the map work
					// of the new data is identical either way.
					fgs = append(fgs, res.Report.PhaseWork[metrics.PhaseContraction]+
						res.Report.PhaseWork[metrics.PhaseReduce])
					bgs = append(bgs, res.Background.Work)
				}
				return medianDur(fgs), medianDur(bgs), nil
			}
			plainFg, _, err := runOnce(false)
			if err != nil {
				return nil, "", fmt.Errorf("figure11 %s/%v plain: %w", app.Name, mode, err)
			}
			splitFg, splitBg, err := runOnce(true)
			if err != nil {
				return nil, "", fmt.Errorf("figure11 %s/%v split: %w", app.Name, mode, err)
			}
			norm := float64(maxDur(plainFg, 1))
			out[mode] = append(out[mode], Figure11Result{
				App:        app.Name,
				Foreground: float64(splitFg) / norm,
				Background: float64(splitBg) / norm,
			})
		}
	}
	var b strings.Builder
	b.WriteString("=== Figure 11: split processing (normalized update time = 1) ===\n")
	for _, mode := range []sliderrt.Mode{sliderrt.Append, sliderrt.Fixed} {
		fmt.Fprintf(&b, "\n(%s)\n%-10s %12s %12s\n", modeName(mode), "app", "foreground", "background")
		for _, r := range out[mode] {
			fmt.Fprintf(&b, "%-10s %12.2f %12.2f\n", r.App, r.Foreground, r.Background)
		}
	}
	return out, b.String(), nil
}

func maxDur(a time.Duration, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// medianDur returns the median of a non-empty duration slice.
func medianDur(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// Figure12Result compares folding vs randomized folding trees.
type Figure12Result struct {
	App       string
	RemovePct int
	// WorkSpeedup is the ratio of contraction work of the standard
	// folding tree to the randomized folding tree over the post-shrink
	// updates, measured in recomputed node materializations — the unit
	// of contraction work in the distributed setting, where every
	// recomputed tree node writes its output to the memoization layer.
	// > 1 means the randomized tree wins.
	WorkSpeedup float64
	// MergeSpeedup is the same ratio measured in combiner invocations
	// (pure in-memory CPU). The standard tree's pass-through nodes are
	// free under this metric, which shifts the crossover; EXPERIMENTS.md
	// discusses the difference.
	MergeSpeedup float64
}

// Figure12 reproduces the randomized-folding-tree experiment of §3.2 /
// §7.3: the window first slides so that the live leaves straddle the
// folding tree's root, then shrinks by 25% or 50% with a 1% add. In that
// state the standard tree cannot fold (neither half of its leaves is
// entirely void), so it keeps operating at the height of the enlarged
// structure, while the randomized tree's expected height tracks the
// shrunken window — the gap, and hence the randomized tree's advantage,
// grows with the removal percentage. Work is measured as combiner
// invocations over the subsequent small updates (the deterministic
// driver of contraction work).
func Figure12(s Scale, appList []App) ([]Figure12Result, string, error) {
	var results []Figure12Result
	w := s.WindowSplits * 2 // larger window so heights differ measurably
	onePct := w / 100
	if onePct < 1 {
		onePct = 1
	}
	var chosen []App
	for _, app := range appList {
		if app.Name == "K-Means" || app.Name == "Matrix" {
			chosen = append(chosen, app)
		}
	}
	for _, app := range chosen {
		for _, removePct := range []int{25, 50} {
			measure := func(randomized bool) (core.Stats, error) {
				cfg := modeConfig(sliderrt.Variable, sliderrt.SelfAdjusting, 0, w, s.Cluster.Nodes)
				cfg.Randomized = randomized
				cfg.Seed = 17
				// Disable the fallback rebuild so the data structures
				// themselves are compared (the paper's Figure 12).
				cfg.RebuildFactor = -1
				rt, err := sliderrt.New(app.NewJob(), cfg)
				if err != nil {
					return core.Stats{}, err
				}
				if _, err := rt.Initial(app.Gen(0, w)); err != nil {
					return core.Stats{}, err
				}
				next := w
				// Two slides of just under half the window each: the
				// appends unfold the structure, and the live region
				// ends up straddling the root, so the shrinks below
				// cannot fold it back — the §3.2 imbalance scenario.
				pre := w/2 - 1
				for i := 0; i < 2; i++ {
					if _, err := rt.Advance(pre, app.Gen(next, next+pre)); err != nil {
						return core.Stats{}, err
					}
					next += pre
				}
				// The shrink under test: remove removePct%, add 1%.
				dropN := rt.Live() * removePct / 100
				if _, err := rt.Advance(dropN, app.Gen(next, next+onePct)); err != nil {
					return core.Stats{}, err
				}
				next += onePct
				// Measure the subsequent small updates (steady-state
				// sliding: 1% out, 1% in).
				var total core.Stats
				for i := 0; i < 5; i++ {
					res, err := rt.Advance(onePct, app.Gen(next, next+onePct))
					if err != nil {
						return core.Stats{}, err
					}
					next += onePct
					total.Merges += res.TreeStats.Merges
					total.NodesRecomputed += res.TreeStats.NodesRecomputed
					total.NodesReused += res.TreeStats.NodesReused
				}
				return total, nil
			}
			foldWork, err := measure(false)
			if err != nil {
				return nil, "", fmt.Errorf("figure12 %s folding: %w", app.Name, err)
			}
			randWork, err := measure(true)
			if err != nil {
				return nil, "", fmt.Errorf("figure12 %s randomized: %w", app.Name, err)
			}
			r := Figure12Result{App: app.Name, RemovePct: removePct}
			if randWork.NodesRecomputed > 0 {
				r.WorkSpeedup = float64(foldWork.NodesRecomputed) / float64(randWork.NodesRecomputed)
			}
			if randWork.Merges > 0 {
				r.MergeSpeedup = float64(foldWork.Merges) / float64(randWork.Merges)
			}
			results = append(results, r)
		}
	}
	var b strings.Builder
	b.WriteString("=== Figure 12: randomized folding tree (speedup vs standard folding) ===\n")
	b.WriteString("(node materializations / combiner invocations)\n")
	fmt.Fprintf(&b, "%-10s %24s %24s\n", "app", "25% remove, 1% add", "50% remove, 1% add")
	for _, app := range []string{"K-Means", "Matrix"} {
		fmt.Fprintf(&b, "%-10s", app)
		for _, pct := range []int{25, 50} {
			for _, r := range results {
				if r.App == app && r.RemovePct == pct {
					fmt.Fprintf(&b, "%14.2fx /%6.2fx ", r.WorkSpeedup, r.MergeSpeedup)
				}
			}
		}
		b.WriteByte('\n')
	}
	return results, b.String(), nil
}
