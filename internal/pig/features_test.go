package pig

import (
	"strings"
	"testing"

	"slider/internal/mapreduce"
)

func TestScalarFunctions(t *testing.T) {
	schema := Schema{"s", "x"}
	row := Row{"Hello", -2.6}
	cases := []struct {
		src  string
		want Value
	}{
		{"UPPER(s)", "HELLO"},
		{"LOWER(s)", "hello"},
		{"STRLEN(s)", 5.0},
		{"CONCAT(s, '!')", "Hello!"},
		{"SUBSTR(s, 1, 3)", "ell"},
		{"SUBSTR(s, 3, 99)", "lo"},
		{"SUBSTR(s, 99, 2)", ""},
		{"ABS(x)", 2.6},
		{"ROUND(x)", -3.0},
		{"FLOOR(x)", -3.0},
		{"CEIL(x)", -2.0},
		{"STRLEN(CONCAT(s, s))", 10.0},
	}
	for _, c := range cases {
		toks, err := lex(c.src)
		if err != nil {
			t.Fatal(err)
		}
		p := &parser{toks: toks}
		expr, err := p.orExpr()
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, err := expr.Eval(schema, row)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Fatalf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestScalarFunctionArity(t *testing.T) {
	toks, err := lex("UPPER(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	p := &parser{toks: toks}
	if _, err := p.orExpr(); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestFunctionsInScript(t *testing.T) {
	src := `
raw = LOAD 'x' AS (word, n);
up = FOREACH raw GENERATE UPPER(word) AS w, n;
g = GROUP up BY w;
agg = FOREACH g GENERATE group AS w, SUM(n) AS total;
o = ORDER agg BY w;
STORE o INTO 'out';
`
	plan := compileTest(t, src, nil)
	rows := []Row{{"ab", 1.0}, {"AB", 2.0}, {"cd", 3.0}}
	got, _, err := RunScratch(plan, []mapreduce.Split{rowsToSplit("s0", rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if got[0][0] != "AB" || got[0][1].(float64) != 3 {
		t.Fatalf("row 0 = %v (case folding broke grouping)", got[0])
	}
}

func TestSampleDeterministic(t *testing.T) {
	src := `
raw = LOAD 'x' AS (k, n);
s = SAMPLE raw 0.5;
g = GROUP s BY k;
agg = FOREACH g GENERATE group AS k, COUNT(*) AS c;
o = ORDER agg BY k;
STORE o INTO 'out';
`
	plan := compileTest(t, src, nil)
	rows := make([]Row, 200)
	for i := range rows {
		rows[i] = Row{"k" + ToString(float64(i%10)), float64(i)}
	}
	a, _, err := RunScratch(plan, []mapreduce.Split{rowsToSplit("s0", rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunScratch(plan, []mapreduce.Split{rowsToSplit("s0", rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(a, b) {
		t.Fatal("sampling is not deterministic")
	}
	var kept float64
	for _, r := range a {
		kept += r[1].(float64)
	}
	if kept < 40 || kept > 160 {
		t.Fatalf("kept %v of 200 rows at fraction 0.5", kept)
	}
}

func TestSampleFractionBounds(t *testing.T) {
	for _, src := range []string{
		"a = LOAD 'x' AS (f); b = SAMPLE a 1.5; STORE b INTO 'o';",
		"a = LOAD 'x' AS (f); b = SAMPLE a hello; STORE b INTO 'o';",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad SAMPLE accepted: %q", src)
		}
	}
}

func TestDescribe(t *testing.T) {
	src := `
raw = LOAD 'events' AS (user, action);
views = FILTER raw BY action == 'view';
sampled = SAMPLE views 0.5;
g = GROUP sampled BY user;
agg = FOREACH g GENERATE group AS user, COUNT(*) AS n;
o = ORDER agg BY n DESC;
top = LIMIT o 3;
STORE top INTO 'dest';
`
	plan := compileTest(t, src, nil)
	desc := plan.Describe()
	for _, want := range []string{
		"2 MapReduce stage(s)",
		"group(user)",
		"filter → sample",
		"order(n)+limit(3)",
		`store into "dest"`,
	} {
		if !strings.Contains(desc, want) {
			t.Fatalf("describe missing %q:\n%s", want, desc)
		}
	}
}
