package pig

import (
	"strings"
	"testing"

	"slider/internal/mapreduce"
)

// FuzzParse checks that arbitrary input never panics the lexer, parser,
// planner, or a scratch execution over a tiny relation: every path must
// either succeed or return an error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		testScript,
		"a = LOAD 'x' AS (f); g = GROUP a BY f; s = FOREACH g GENERATE group, COUNT(*); STORE s INTO 'o';",
		"a = LOAD 'x' AS (f, g); b = FILTER a BY f == 'q' AND g > 1.5; d = DISTINCT b; STORE d INTO 'o';",
		"a = LOAD 'x' AS (f); b = SAMPLE a 0.5; o = ORDER b BY f DESC; l = LIMIT o 2; STORE l INTO 'o';",
		"a = LOAD 'x' AS (s); u = FOREACH a GENERATE UPPER(s) AS t, STRLEN(s); d = DISTINCT u; STORE d INTO 'o';",
		"-- comment\na = LOAD 'x' AS (f);\nSTORE a INTO 'o';",
		"a = b = c;;; '",
		"a = LOAD 'x' AS (f); b = JOIN a BY f, 'tbl' BY k; g = GROUP b BY f; s = FOREACH g GENERATE group, MIN(f); STORE s INTO 'o';",
		"\x00\xff(((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return
		}
		plan, err := Compile(script, map[string]*Table{
			"tbl": {Schema: Schema{"k", "v"}, Rows: []Row{{"a", 1.0}}},
		}, 2)
		if err != nil {
			return
		}
		_ = plan.Describe()
		// Execute over a tiny relation whose width matches the LOAD
		// schema; evaluation errors are fine, panics are not.
		row := make(Row, len(plan.LoadSchema))
		for i, name := range plan.LoadSchema {
			if strings.Contains(name, "n") {
				row[i] = float64(i)
			} else {
				row[i] = "v" + name
			}
		}
		split := mapreduce.Split{ID: "fz", Records: []mapreduce.Record{row}}
		_, _, _ = RunScratch(plan, []mapreduce.Split{split}, nil)
	})
}
