package pig

import (
	"math"
	"sort"

	"slider/internal/mapreduce"
)

// fnv64 helpers shared by the pig value fingerprints.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mixUint(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// fingerprintRow hashes one row.
func fingerprintRow(h uint64, row Row) uint64 {
	for _, v := range row {
		switch x := v.(type) {
		case float64:
			h = mixUint(h, math.Float64bits(x))
		case string:
			h = mixString(h, x)
			h = mixUint(h, 0x1f)
		default:
			h = mixString(h, ToString(x))
		}
	}
	return mixUint(h, 0x9e)
}

// FingerprintRows hashes a row list (order-sensitive).
func FingerprintRows(rows []Row) uint64 {
	h := uint64(fnvOffset)
	for _, r := range rows {
		h = fingerprintRow(h, r)
	}
	return h
}

// encodeRow renders a row as a stable string key (for DISTINCT).
func encodeRow(row Row) string {
	out := ""
	for i, v := range row {
		if i > 0 {
			out += "\x1f"
		}
		out += ToString(v)
	}
	return out
}

// rowBytes estimates a row's size.
func rowBytes(row Row) int64 {
	var n int64 = 16
	for _, v := range row {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 16
		default:
			n += 16
		}
	}
	return n
}

// AggCell is the partial state of one aggregate column.
type AggCell struct {
	Sum   float64
	Min   float64
	Max   float64
	Count int64
}

// mergeCell merges two partial cells.
func mergeCell(a, b AggCell) AggCell {
	out := AggCell{Sum: a.Sum + b.Sum, Count: a.Count + b.Count, Min: a.Min, Max: a.Max}
	if b.Count > 0 && (a.Count == 0 || b.Min < out.Min) {
		out.Min = b.Min
	}
	if b.Count > 0 && (a.Count == 0 || b.Max > out.Max) {
		out.Max = b.Max
	}
	return out
}

// AggVal is the partial aggregation state for one group: the group's key
// values plus one cell per aggregate column.
type AggVal struct {
	KeyVals []Value
	Cells   []AggCell
}

var (
	_ mapreduce.Sizer         = (*AggVal)(nil)
	_ mapreduce.Fingerprinter = (*AggVal)(nil)
)

// Merge returns a fresh merged aggregate.
func (a *AggVal) Merge(b *AggVal) *AggVal {
	out := &AggVal{KeyVals: a.KeyVals, Cells: make([]AggCell, len(a.Cells))}
	for i := range a.Cells {
		out.Cells[i] = mergeCell(a.Cells[i], b.Cells[i])
	}
	return out
}

// SizeBytes implements mapreduce.Sizer.
func (a *AggVal) SizeBytes() int64 { return int64(32*len(a.Cells)) + rowBytes(a.KeyVals) }

// Fingerprint implements mapreduce.Fingerprinter.
func (a *AggVal) Fingerprint() uint64 {
	h := fingerprintRow(fnvOffset, a.KeyVals)
	for _, c := range a.Cells {
		h = mixUint(h, math.Float64bits(c.Sum))
		h = mixUint(h, math.Float64bits(c.Min))
		h = mixUint(h, math.Float64bits(c.Max))
		h = mixUint(h, uint64(c.Count))
	}
	return h
}

// RowVal wraps a single row as a combiner value (DISTINCT): combining two
// identical rows keeps one, which is trivially associative/commutative.
type RowVal struct {
	Row Row
}

var (
	_ mapreduce.Sizer         = (*RowVal)(nil)
	_ mapreduce.Fingerprinter = (*RowVal)(nil)
)

// SizeBytes implements mapreduce.Sizer.
func (r *RowVal) SizeBytes() int64 { return rowBytes(r.Row) }

// Fingerprint implements mapreduce.Fingerprinter.
func (r *RowVal) Fingerprint() uint64 { return fingerprintRow(fnvOffset, r.Row) }

// SortedRows is the combiner value of ORDER [+ LIMIT]: rows kept sorted by
// the sort key; merging is a sorted merge capped at Limit, which (like a
// top-k list) is associative and commutative with deterministic
// tie-breaking on the encoded row.
type SortedRows struct {
	// KeyIdx is the sort column.
	KeyIdx int
	// Desc sorts descending when set.
	Desc bool
	// Limit caps the kept rows (0 = unlimited).
	Limit int
	// Rows is sorted by (key, encodeRow).
	Rows []Row
}

var (
	_ mapreduce.Sizer         = (*SortedRows)(nil)
	_ mapreduce.Fingerprinter = (*SortedRows)(nil)
)

// rowLess orders rows by the sort key with a deterministic tie-break.
func (s *SortedRows) rowLess(a, b Row) bool {
	av, bv := a[s.KeyIdx], b[s.KeyIdx]
	if af, aok := strictNum(av); aok {
		if bf, bok := strictNum(bv); bok {
			if af != bf {
				if s.Desc {
					return af > bf
				}
				return af < bf
			}
			return encodeRow(a) < encodeRow(b)
		}
	}
	as, bs := ToString(av), ToString(bv)
	if as != bs {
		if s.Desc {
			return as > bs
		}
		return as < bs
	}
	return encodeRow(a) < encodeRow(b)
}

// Merge returns a fresh sorted (and capped) union.
func (s *SortedRows) Merge(other *SortedRows) *SortedRows {
	limit := s.Limit
	if other.Limit > limit {
		limit = other.Limit
	}
	out := &SortedRows{KeyIdx: s.KeyIdx, Desc: s.Desc, Limit: limit}
	capacity := len(s.Rows) + len(other.Rows)
	if limit > 0 && capacity > limit {
		capacity = limit
	}
	out.Rows = make([]Row, 0, capacity)
	i, j := 0, 0
	for (limit == 0 || len(out.Rows) < limit) && (i < len(s.Rows) || j < len(other.Rows)) {
		switch {
		case i == len(s.Rows):
			out.Rows = append(out.Rows, other.Rows[j])
			j++
		case j == len(other.Rows):
			out.Rows = append(out.Rows, s.Rows[i])
			i++
		case s.rowLess(s.Rows[i], other.Rows[j]):
			out.Rows = append(out.Rows, s.Rows[i])
			i++
		default:
			out.Rows = append(out.Rows, other.Rows[j])
			j++
		}
	}
	return out
}

// Normalize sorts (and caps) the rows in place; used when building the
// initial per-row values.
func (s *SortedRows) Normalize() {
	sort.SliceStable(s.Rows, func(i, j int) bool { return s.rowLess(s.Rows[i], s.Rows[j]) })
	if s.Limit > 0 && len(s.Rows) > s.Limit {
		s.Rows = s.Rows[:s.Limit]
	}
}

// SizeBytes implements mapreduce.Sizer.
func (s *SortedRows) SizeBytes() int64 {
	var n int64 = 48
	for _, r := range s.Rows {
		n += rowBytes(r)
	}
	return n
}

// Fingerprint implements mapreduce.Fingerprinter.
func (s *SortedRows) Fingerprint() uint64 { return FingerprintRows(s.Rows) }
