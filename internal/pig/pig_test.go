package pig

import (
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

func TestLexer(t *testing.T) {
	toks, err := lex("a = LOAD 'x' AS (f1, f2); -- comment\nb = FILTER a BY f1 >= 3.5;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[2].kind != tokIdent || toks[2].text != "LOAD" {
		t.Fatalf("token 2 = %+v", toks[2])
	}
	if toks[3].kind != tokString || toks[3].text != "x" {
		t.Fatalf("token 3 = %+v", toks[3])
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("a = 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("a = @"); err == nil {
		t.Fatal("bad character accepted")
	}
}

const testScript = `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
views = FILTER raw BY action == 'view' AND timespent > 10;
grouped = GROUP views BY user;
counts = FOREACH grouped GENERATE group AS user, COUNT(*) AS views, SUM(timespent) AS total;
ordered = ORDER counts BY total DESC;
top = LIMIT ordered 5;
STORE top INTO 'out';
`

func TestParseChain(t *testing.T) {
	script, err := Parse(testScript)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := script.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 7 {
		t.Fatalf("chain has %d statements, want 7", len(chain))
	}
	if _, ok := chain[0].(*LoadStmt); !ok {
		t.Fatalf("chain[0] = %T, want LOAD", chain[0])
	}
	if _, ok := chain[6].(*StoreStmt); !ok {
		t.Fatalf("chain[6] = %T, want STORE", chain[6])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a = LOAD 'x' AS (f);", // no STORE
		"STORE a INTO 'o';",    // no LOAD
		"a = LOAD 'x' AS (f); b = FROB a; STORE b INTO 'o';",            // unknown op
		"a = LOAD 'x' AS (f); STORE z INTO 'o';",                        // unknown relation
		"a = LOAD 'x' AS (f); b = FILTER a BY f = 3; STORE b INTO 'o';", // = vs ==
	}
	for _, src := range bad {
		script, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := script.Chain(); err == nil {
			if _, err := Compile(script, nil, 2); err == nil {
				t.Fatalf("bad script accepted: %q", src)
			}
		}
	}
}

func TestExprEval(t *testing.T) {
	schema := Schema{"a", "b", "s"}
	row := Row{2.0, 3.0, "xy"}
	cases := []struct {
		src  string
		want Value
	}{
		{"a + b * 2", 8.0},
		{"(a + b) * 2", 10.0},
		{"a < b", true},
		{"a >= b", false},
		{"s == 'xy'", true},
		{"s != 'xy'", false},
		{"NOT (a == 2)", false},
		{"a == 2 AND b == 3", true},
		{"a == 9 OR b == 3", true},
		{"b - a", 1.0},
		{"b / a", 1.5},
	}
	for _, c := range cases {
		p := &parser{}
		toks, err := lex(c.src)
		if err != nil {
			t.Fatal(err)
		}
		p.toks = toks
		expr, err := p.orExpr()
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, err := expr.Eval(schema, row)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Fatalf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	schema := Schema{"a"}
	row := Row{1.0}
	for _, src := range []string{"zzz == 1", "a / 0", "'x' + 1", "NOT a"} {
		toks, err := lex(src)
		if err != nil {
			t.Fatal(err)
		}
		p := &parser{toks: toks}
		expr, err := p.orExpr()
		if err != nil {
			continue
		}
		if _, err := expr.Eval(schema, row); err == nil {
			t.Fatalf("expression %q evaluated without error", src)
		}
	}
}

func compileTest(t *testing.T, src string, tables map[string]*Table) *Plan {
	t.Helper()
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(script, tables, 2)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCompileStages(t *testing.T) {
	plan := compileTest(t, testScript, nil)
	if len(plan.Stages) != 2 {
		t.Fatalf("plan has %d stages, want 2 (group, order)", len(plan.Stages))
	}
	if plan.Stages[1].Job.Partitions != 1 {
		t.Fatal("ORDER stage must have a single reducer")
	}
	if plan.Output != "out" {
		t.Fatalf("output = %q", plan.Output)
	}
}

func rowsToSplit(id string, rows []Row) mapreduce.Split {
	records := make([]mapreduce.Record, len(rows))
	for i, r := range rows {
		records[i] = r
	}
	return mapreduce.Split{ID: id, Records: records}
}

func TestScratchGroupOrder(t *testing.T) {
	plan := compileTest(t, testScript, nil)
	rows := []Row{
		{"u1", "view", "p1", 20.0, 0.0},
		{"u1", "view", "p2", 30.0, 0.0},
		{"u2", "view", "p1", 100.0, 0.0},
		{"u1", "click", "p1", 999.0, 0.0}, // filtered: not a view
		{"u2", "view", "p3", 5.0, 0.0},    // filtered: timespent <= 10
	}
	got, schema, err := RunScratch(plan, []mapreduce.Split{rowsToSplit("s0", rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 3 || schema[0] != "user" || schema[2] != "total" {
		t.Fatalf("schema = %v", schema)
	}
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2", len(got))
	}
	// u2 total=100 ranks above u1 total=50 (DESC).
	if got[0][0] != "u2" || got[0][1].(float64) != 1 || got[0][2].(float64) != 100 {
		t.Fatalf("row 0 = %v", got[0])
	}
	if got[1][0] != "u1" || got[1][1].(float64) != 2 || got[1][2].(float64) != 50 {
		t.Fatalf("row 1 = %v", got[1])
	}
}

func TestScratchJoinDistinct(t *testing.T) {
	src := `
raw = LOAD 'events' AS (user, action);
joined = JOIN raw BY user, 'users' BY user;
pairs = FOREACH joined GENERATE region, action;
uniq = DISTINCT pairs;
grouped = GROUP uniq BY region;
out = FOREACH grouped GENERATE group AS region, COUNT(*) AS combos;
ordered = ORDER out BY region;
STORE ordered INTO 'x';
`
	tables := map[string]*Table{
		"users": {
			Schema: Schema{"user", "region"},
			Rows:   []Row{{"u1", "eu"}, {"u2", "na"}},
		},
	}
	plan := compileTest(t, src, tables)
	if len(plan.Stages) != 3 {
		t.Fatalf("plan has %d stages, want 3 (distinct, group, order)", len(plan.Stages))
	}
	rows := []Row{
		{"u1", "view"}, {"u1", "view"}, {"u1", "click"},
		{"u2", "view"}, {"u3", "view"}, // u3 has no region: dropped by join
	}
	got, _, err := RunScratch(plan, []mapreduce.Split{rowsToSplit("s0", rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(got), got)
	}
	// eu has {view, click} = 2 combos; na has {view} = 1.
	if got[0][0] != "eu" || got[0][1].(float64) != 2 {
		t.Fatalf("row 0 = %v", got[0])
	}
	if got[1][0] != "na" || got[1][1].(float64) != 1 {
		t.Fatalf("row 1 = %v", got[1])
	}
}

func TestChainRejectsSelfReference(t *testing.T) {
	// Fuzzing regression: a relation defined in terms of itself must be
	// rejected, not loop forever.
	script, err := Parse("a = LOAD 'x' AS (f); b = FILTER b BY f == 1; STORE b INTO 'o';")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := script.Chain(); err == nil {
		t.Fatal("self-referential relation accepted")
	}
}

func TestCompileRejectsBareGroup(t *testing.T) {
	src := "a = LOAD 'x' AS (f); g = GROUP a BY f; STORE g INTO 'o';"
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(script, nil, 2); err == nil {
		t.Fatal("GROUP without aggregating FOREACH accepted")
	}
}

func TestCompileRejectsMapOnly(t *testing.T) {
	src := "a = LOAD 'x' AS (f); b = FILTER a BY f == 1; STORE b INTO 'o';"
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(script, nil, 2); err == nil {
		t.Fatal("zero-stage script accepted")
	}
}

func sameRows(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if encodeRow(a[i]) != encodeRow(b[i]) {
			return false
		}
	}
	return true
}

func pipelineMemo() memo.Config {
	cfg := memo.DefaultConfig()
	cfg.Nodes = 4
	return cfg
}

func TestPipelineIncrementalMatchesScratch(t *testing.T) {
	gen := workload.NewPigMix(workload.PigMixConfig{Seed: 9, Users: 60, Pages: 30, RowsPerSplit: 50})
	tblSchema, tblRows := gen.UserTable()
	table := &Table{Schema: tblSchema}
	for _, r := range tblRows {
		table.Rows = append(table.Rows, Row(r))
	}
	src := `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
views = FILTER raw BY action == 'view';
joined = JOIN views BY user, 'users' BY user;
grouped = GROUP joined BY region;
agg = FOREACH grouped GENERATE group AS region, COUNT(*) AS views, SUM(timespent) AS total, AVG(timespent) AS mean;
ordered = ORDER agg BY total DESC;
STORE ordered INTO 'o';
`
	plan := compileTest(t, src, map[string]*Table{"users": table})

	for _, mode := range []sliderrt.Mode{sliderrt.Append, sliderrt.Fixed, sliderrt.Variable} {
		cfg := PipelineConfig{Mode: mode, Memo: pipelineMemo()}
		if mode == sliderrt.Fixed {
			cfg.BucketSplits = 2
			cfg.WindowBuckets = 4
		}
		pl, err := NewPipeline(plan, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		window := gen.Range(0, 8)
		res, err := pl.Initial(window)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want, _, err := RunScratch(plan, window, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(res.Rows, want) {
			t.Fatalf("%v: initial rows mismatch", mode)
		}

		slides := []struct{ drop, add int }{{2, 2}, {2, 2}}
		if mode == sliderrt.Append {
			slides = []struct{ drop, add int }{{0, 2}, {0, 3}}
		}
		if mode == sliderrt.Variable {
			slides = []struct{ drop, add int }{{3, 1}, {0, 4}}
		}
		next := 8
		for _, s := range slides {
			add := gen.Range(next, next+s.add)
			next += s.add
			res, err := pl.Advance(s.drop, add)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			window = append(window[s.drop:], add...)
			want, _, err := RunScratch(plan, window, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(res.Rows, want) {
				t.Fatalf("%v: incremental rows mismatch after slide", mode)
			}
		}
	}
}

func TestPipelineReusesLaterStages(t *testing.T) {
	gen := workload.NewPigMix(workload.PigMixConfig{Seed: 3, Users: 40, Pages: 20, RowsPerSplit: 40})
	src := `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
grouped = GROUP raw BY page;
agg = FOREACH grouped GENERATE group AS page, COUNT(*) AS hits;
popular = FILTER agg BY hits > 1;
g2 = GROUP popular BY page;
agg2 = FOREACH g2 GENERATE group AS page, SUM(hits) AS total;
ordered = ORDER agg2 BY page;
STORE ordered INTO 'o';
`
	plan := compileTest(t, src, nil)
	if len(plan.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(plan.Stages))
	}
	pl, err := NewPipeline(plan, PipelineConfig{Mode: sliderrt.Variable, Memo: pipelineMemo()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Initial(gen.Range(0, 8)); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Advance(1, gen.Range(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Later stages must reuse some pseudo-split map work via
	// fingerprint memoization.
	var reused int64
	for _, sr := range res.StageReports[1:] {
		reused += sr.Counters.MapTasksReused
	}
	if reused == 0 {
		t.Fatal("no later-stage map tasks reused after a small slide")
	}
}

func TestPseudoSplitsStable(t *testing.T) {
	rows := []Row{{"a", 1.0}, {"b", 2.0}, {"c", 3.0}}
	a := pseudoSplits(rows, 4)
	b := pseudoSplits([]Row{rows[2], rows[0], rows[1]}, 4) // order shuffled
	for i := range a {
		if a[i].fp != b[i].fp {
			t.Fatalf("pseudo-split %d fingerprint depends on row order", i)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(testScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	script, err := Parse(testScript)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(script, nil, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAdvance(b *testing.B) {
	gen := workload.NewPigMix(workload.PigMixConfig{Seed: 1, Users: 100, Pages: 40, RowsPerSplit: 100})
	plan := func() *Plan {
		script, err := Parse(testScript)
		if err != nil {
			b.Fatal(err)
		}
		p, err := Compile(script, nil, 4)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}()
	pl, err := NewPipeline(plan, PipelineConfig{Mode: sliderrt.Variable, Memo: pipelineMemo()})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pl.Initial(gen.Range(0, 16)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Advance(1, gen.Range(16+i, 17+i)); err != nil {
			b.Fatal(err)
		}
	}
}
