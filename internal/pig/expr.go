package pig

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a dynamically typed Pig value: string or float64.
type Value = any

// Row is one tuple; columns are addressed positionally through a Schema.
// It is an alias so that any []any produced by a generator or an upstream
// stage asserts cleanly to Row.
type Row = []Value

// Schema maps column names to positions.
type Schema []string

// Index returns a column's position or -1.
func (s Schema) Index(name string) int {
	for i, n := range s {
		if n == name {
			return i
		}
	}
	return -1
}

// Expr is an evaluable expression over a row.
type Expr interface {
	// Eval computes the expression's value for one row.
	Eval(schema Schema, row Row) (Value, error)
	// String renders the expression (for plan display and column
	// naming).
	String() string
}

// FieldExpr references a column by name.
type FieldExpr struct {
	Name string
}

// Eval implements Expr.
func (e *FieldExpr) Eval(schema Schema, row Row) (Value, error) {
	i := schema.Index(e.Name)
	if i < 0 || i >= len(row) {
		return nil, fmt.Errorf("pig: unknown field %q (schema %v)", e.Name, schema)
	}
	return row[i], nil
}

func (e *FieldExpr) String() string { return e.Name }

// ConstExpr is a literal.
type ConstExpr struct {
	Val Value
}

// Eval implements Expr.
func (e *ConstExpr) Eval(Schema, Row) (Value, error) { return e.Val, nil }

func (e *ConstExpr) String() string {
	if s, ok := e.Val.(string); ok {
		return "'" + s + "'"
	}
	return fmt.Sprint(e.Val)
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op          string // == != < <= > >= + - * / AND OR
	Left, Right Expr
}

// Eval implements Expr.
func (e *BinExpr) Eval(schema Schema, row Row) (Value, error) {
	l, err := e.Left.Eval(schema, row)
	if err != nil {
		return nil, err
	}
	r, err := e.Right.Eval(schema, row)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "AND", "OR":
		lb, lok := l.(bool)
		rb, rok := r.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("pig: %s on non-boolean operands", e.Op)
		}
		if e.Op == "AND" {
			return lb && rb, nil
		}
		return lb || rb, nil
	case "+", "-", "*", "/":
		lf, rf, ok := numPair(l, r)
		if !ok {
			return nil, fmt.Errorf("pig: arithmetic on non-numeric operands %v %s %v", l, e.Op, r)
		}
		switch e.Op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		default:
			if rf == 0 {
				return nil, fmt.Errorf("pig: division by zero")
			}
			return lf / rf, nil
		}
	}
	// Comparisons: numeric when both sides are numeric, else string.
	if lf, rf, ok := numPair(l, r); ok {
		switch e.Op {
		case "==":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	}
	ls, rs := ToString(l), ToString(r)
	switch e.Op {
	case "==":
		return ls == rs, nil
	case "!=":
		return ls != rs, nil
	case "<":
		return ls < rs, nil
	case "<=":
		return ls <= rs, nil
	case ">":
		return ls > rs, nil
	case ">=":
		return ls >= rs, nil
	}
	return nil, fmt.Errorf("pig: unknown operator %q", e.Op)
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// FuncExpr is a scalar function call. Supported functions: UPPER, LOWER,
// STRLEN, CONCAT, SUBSTR(s, start, len), ABS, ROUND, FLOOR, CEIL.
type FuncExpr struct {
	Name string
	Args []Expr
}

// scalarFuncs maps function names to their arities.
var scalarFuncs = map[string]int{
	"UPPER": 1, "LOWER": 1, "STRLEN": 1, "CONCAT": 2, "SUBSTR": 3,
	"ABS": 1, "ROUND": 1, "FLOOR": 1, "CEIL": 1,
}

// Eval implements Expr.
func (e *FuncExpr) Eval(schema Schema, row Row) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(schema, row)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch e.Name {
	case "UPPER":
		return strings.ToUpper(ToString(args[0])), nil
	case "LOWER":
		return strings.ToLower(ToString(args[0])), nil
	case "STRLEN":
		return float64(len(ToString(args[0]))), nil
	case "CONCAT":
		return ToString(args[0]) + ToString(args[1]), nil
	case "SUBSTR":
		s := ToString(args[0])
		start, ok1 := ToNum(args[1])
		length, ok2 := ToNum(args[2])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("pig: SUBSTR needs numeric start/len")
		}
		lo := int(start)
		if lo < 0 {
			lo = 0
		}
		if lo > len(s) {
			lo = len(s)
		}
		hi := lo + int(length)
		if hi > len(s) {
			hi = len(s)
		}
		if hi < lo {
			hi = lo
		}
		return s[lo:hi], nil
	case "ABS", "ROUND", "FLOOR", "CEIL":
		f, ok := ToNum(args[0])
		if !ok {
			return nil, fmt.Errorf("pig: %s on non-numeric %v", e.Name, args[0])
		}
		switch e.Name {
		case "ABS":
			return math.Abs(f), nil
		case "ROUND":
			return math.Round(f), nil
		case "FLOOR":
			return math.Floor(f), nil
		default:
			return math.Ceil(f), nil
		}
	}
	return nil, fmt.Errorf("pig: unknown function %s", e.Name)
}

func (e *FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Inner Expr
}

// Eval implements Expr.
func (e *NotExpr) Eval(schema Schema, row Row) (Value, error) {
	v, err := e.Inner.Eval(schema, row)
	if err != nil {
		return nil, err
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("pig: NOT on non-boolean")
	}
	return !b, nil
}

func (e *NotExpr) String() string { return "NOT " + e.Inner.String() }

// ToNum coerces a value to float64.
func ToNum(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// numPair coerces both values when both are numeric.
func numPair(l, r Value) (float64, float64, bool) {
	lf, lok := strictNum(l)
	rf, rok := strictNum(r)
	return lf, rf, lok && rok
}

// strictNum treats only real numeric types as numbers (strings compare as
// strings even when they parse).
func strictNum(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

// ToString renders a value the way Pig prints it.
func ToString(v Value) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}
