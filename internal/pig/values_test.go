package pig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggCellMerge(t *testing.T) {
	a := AggCell{Sum: 10, Min: 2, Max: 8, Count: 3}
	b := AggCell{Sum: 5, Min: 1, Max: 9, Count: 2}
	m := mergeCell(a, b)
	if m.Sum != 15 || m.Min != 1 || m.Max != 9 || m.Count != 5 {
		t.Fatalf("m = %+v", m)
	}
	// Merging with an empty cell keeps the non-empty side's extrema.
	empty := AggCell{}
	m = mergeCell(a, empty)
	if m.Min != 2 || m.Max != 8 || m.Count != 3 {
		t.Fatalf("m with empty = %+v", m)
	}
	m = mergeCell(empty, b)
	if m.Min != 1 || m.Max != 9 {
		t.Fatalf("empty with m = %+v", m)
	}
}

func TestAggValMergeDoesNotMutate(t *testing.T) {
	a := &AggVal{KeyVals: Row{"k"}, Cells: []AggCell{{Sum: 1, Count: 1}}}
	b := &AggVal{KeyVals: Row{"k"}, Cells: []AggCell{{Sum: 2, Count: 1}}}
	m := a.Merge(b)
	if a.Cells[0].Sum != 1 || b.Cells[0].Sum != 2 {
		t.Fatal("merge mutated an input")
	}
	if m.Cells[0].Sum != 3 || m.Cells[0].Count != 2 {
		t.Fatalf("m = %+v", m.Cells[0])
	}
}

// genSorted builds a SortedRows with the invariant held (via merging
// singletons, as the map side does).
func genSorted(rng *rand.Rand, keyIdx, limit int) *SortedRows {
	s := &SortedRows{KeyIdx: keyIdx, Limit: limit}
	cnt := rng.Intn(6)
	for i := 0; i < cnt; i++ {
		single := &SortedRows{KeyIdx: keyIdx, Limit: limit, Rows: []Row{
			{float64(rng.Intn(10)), "v" + ToString(float64(rng.Intn(5)))},
		}}
		s = s.Merge(single)
	}
	return s
}

func sortedEqual(a, b *SortedRows) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if encodeRow(a.Rows[i]) != encodeRow(b.Rows[i]) {
			return false
		}
	}
	return true
}

func TestSortedRowsMergeProperties(t *testing.T) {
	property := func(seed int64, limited bool) bool {
		rng := rand.New(rand.NewSource(seed))
		limit := 0
		if limited {
			limit = 3
		}
		a := genSorted(rng, 0, limit)
		b := genSorted(rng, 0, limit)
		c := genSorted(rng, 0, limit)
		if !sortedEqual(a.Merge(b), b.Merge(a)) {
			return false
		}
		return sortedEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedRowsDescAndLimit(t *testing.T) {
	s := &SortedRows{KeyIdx: 0, Desc: true, Limit: 2}
	for _, v := range []float64{1, 5, 3, 9} {
		s = s.Merge(&SortedRows{KeyIdx: 0, Desc: true, Limit: 2, Rows: []Row{{v}}})
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %v", s.Rows)
	}
	if s.Rows[0][0].(float64) != 9 || s.Rows[1][0].(float64) != 5 {
		t.Fatalf("rows = %v, want [9 5]", s.Rows)
	}
}

func TestSortedRowsNormalize(t *testing.T) {
	s := &SortedRows{KeyIdx: 0, Limit: 2, Rows: []Row{{3.0}, {1.0}, {2.0}}}
	s.Normalize()
	if len(s.Rows) != 2 || s.Rows[0][0].(float64) != 1 || s.Rows[1][0].(float64) != 2 {
		t.Fatalf("rows = %v", s.Rows)
	}
}

func TestRowFingerprints(t *testing.T) {
	a := []Row{{"x", 1.0}, {"y", 2.0}}
	b := []Row{{"x", 1.0}, {"y", 2.0}}
	if FingerprintRows(a) != FingerprintRows(b) {
		t.Fatal("equal row lists fingerprint differently")
	}
	c := []Row{{"y", 2.0}, {"x", 1.0}}
	if FingerprintRows(a) == FingerprintRows(c) {
		t.Fatal("row-list fingerprint ignores order")
	}
}

func TestEncodeRowSeparator(t *testing.T) {
	// Fields must not collide across the separator.
	a := encodeRow(Row{"ab", "c"})
	b := encodeRow(Row{"a", "bc"})
	if a == b {
		t.Fatal("encodeRow collides across field boundaries")
	}
}

func TestValueSizes(t *testing.T) {
	small := (&RowVal{Row: Row{"a"}}).SizeBytes()
	big := (&RowVal{Row: Row{"a", "some longer string", 1.0}}).SizeBytes()
	if small >= big {
		t.Fatalf("sizes not monotone: %d %d", small, big)
	}
	agg := &AggVal{KeyVals: Row{"k"}, Cells: make([]AggCell, 3)}
	if agg.SizeBytes() <= 0 {
		t.Fatal("agg size")
	}
	sr := &SortedRows{Rows: []Row{{"a"}}}
	if sr.SizeBytes() <= 0 {
		t.Fatal("sorted size")
	}
}
