package pig

import (
	"fmt"
	"sort"
	"strings"

	"slider/internal/mapreduce"
)

// rowOp is one fused map-side operation (filter, projection, replicated
// join). It returns zero or more output rows for one input row.
type rowOp struct {
	name  string
	out   Schema
	apply func(row Row) ([]Row, error)
}

// Table is a static side relation for replicated joins.
type Table struct {
	// Schema names the table's columns.
	Schema Schema
	// Rows holds the table contents.
	Rows []Row
}

// boundaryKind classifies the operation that ends a stage.
type boundaryKind int

const (
	boundaryGroup boundaryKind = iota + 1
	boundaryDistinct
	boundaryOrder
)

// Stage is one MapReduce job of the compiled pipeline.
type Stage struct {
	// Name describes the stage (e.g. "group(user)").
	Name string
	// Job is the executable MapReduce job: its Map fuses the stage's
	// row operations and emits per the boundary operator.
	Job *mapreduce.Job
	// InSchema and OutSchema describe the stage's row formats.
	InSchema  Schema
	OutSchema Schema
	// OpNames lists the fused map-side operations feeding the stage's
	// boundary operator (for plan display).
	OpNames []string
	// finalize converts the job's output into ordered rows.
	finalize func(out mapreduce.Output) []Row
	// post applies trailing fused row ops to the finalized rows (only
	// the last stage has them).
	post []rowOp
}

// Plan is the compiled pipeline.
type Plan struct {
	// Stages run in order; stage 1 reads the sliding window.
	Stages []*Stage
	// LoadSchema is the schema of the window's input rows.
	LoadSchema Schema
	// Output is the STORE destination name.
	Output string
}

// Compile turns a parsed script into a pipeline of MapReduce stages.
// tables provides the static side relations referenced by JOINs;
// partitions sets each stage's reduce parallelism.
func Compile(script *Script, tables map[string]*Table, partitions int) (*Plan, error) {
	chain, err := script.Chain()
	if err != nil {
		return nil, err
	}
	load, ok := chain[0].(*LoadStmt)
	if !ok {
		return nil, fmt.Errorf("pig: pipeline must start with LOAD")
	}
	plan := &Plan{LoadSchema: Schema(load.Schema)}
	schema := Schema(load.Schema)
	var pending []rowOp

	i := 1
	for i < len(chain) {
		switch st := chain[i].(type) {
		case *FilterStmt:
			op, err := makeFilterOp(st, schema)
			if err != nil {
				return nil, err
			}
			pending = append(pending, op)
			i++
		case *ForeachStmt:
			if hasAggregates(st) {
				return nil, fmt.Errorf("pig: FOREACH with aggregates must directly follow GROUP (relation %q)", st.Alias)
			}
			op, err := makeProjectOp(st, schema)
			if err != nil {
				return nil, err
			}
			schema = op.out
			pending = append(pending, op)
			i++
		case *SampleStmt:
			op := makeSampleOp(st, schema)
			pending = append(pending, op)
			i++
		case *JoinStmt:
			table, ok := tables[st.Table]
			if !ok {
				return nil, fmt.Errorf("pig: unknown join table %q", st.Table)
			}
			op, err := makeJoinOp(st, schema, table)
			if err != nil {
				return nil, err
			}
			schema = op.out
			pending = append(pending, op)
			i++
		case *GroupStmt:
			// GROUP must be followed by an aggregating FOREACH.
			if i+1 >= len(chain) {
				return nil, fmt.Errorf("pig: GROUP %q must be followed by FOREACH", st.Alias)
			}
			fe, ok := chain[i+1].(*ForeachStmt)
			if !ok || !hasAggregates(fe) {
				return nil, fmt.Errorf("pig: GROUP %q must be followed by an aggregating FOREACH", st.Alias)
			}
			stage, outSchema, err := makeGroupStage(st, fe, schema, pending, partitions)
			if err != nil {
				return nil, err
			}
			plan.Stages = append(plan.Stages, stage)
			schema = outSchema
			pending = nil
			i += 2
		case *DistinctStmt:
			stage := makeDistinctStage(st, schema, pending, partitions)
			plan.Stages = append(plan.Stages, stage)
			pending = nil
			i++
		case *OrderStmt:
			limit := 0
			skip := 1
			if i+1 < len(chain) {
				if ls, ok := chain[i+1].(*LimitStmt); ok {
					limit = ls.N
					skip = 2
				}
			}
			stage, err := makeOrderStage(st, schema, pending, limit)
			if err != nil {
				return nil, err
			}
			plan.Stages = append(plan.Stages, stage)
			pending = nil
			i += skip
		case *LimitStmt:
			return nil, fmt.Errorf("pig: LIMIT is only supported directly after ORDER (relation %q)", st.Alias)
		case *StoreStmt:
			plan.Output = st.Output
			i++
		default:
			return nil, fmt.Errorf("pig: unsupported statement %T", st)
		}
	}
	if len(plan.Stages) == 0 {
		return nil, fmt.Errorf("pig: script compiles to zero MapReduce stages; add a GROUP, DISTINCT, or ORDER")
	}
	if len(pending) > 0 {
		last := plan.Stages[len(plan.Stages)-1]
		last.post = pending
		last.OutSchema = pending[len(pending)-1].out
		for _, op := range pending {
			last.OpNames = append(last.OpNames, "post:"+op.name)
		}
	}
	return plan, nil
}

// Describe renders the compiled pipeline: one line per MapReduce stage
// with its fused map-side operations and output schema (Pig's EXPLAIN).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline of %d MapReduce stage(s), input %v:\n", len(p.Stages), p.LoadSchema)
	for i, st := range p.Stages {
		fmt.Fprintf(&b, "  stage %d: %s", i+1, st.Name)
		if len(st.OpNames) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(st.OpNames, " → "))
		}
		fmt.Fprintf(&b, " → %v\n", st.OutSchema)
	}
	fmt.Fprintf(&b, "  store into %q\n", p.Output)
	return b.String()
}

// hasAggregates reports whether a FOREACH contains aggregate columns.
func hasAggregates(st *ForeachStmt) bool {
	for _, g := range st.Gens {
		if g.Agg != "" {
			return true
		}
	}
	return false
}

// makeFilterOp builds a fused FILTER.
func makeFilterOp(st *FilterStmt, schema Schema) (rowOp, error) {
	s := schema
	cond := st.Cond
	return rowOp{
		name: "filter",
		out:  s,
		apply: func(row Row) ([]Row, error) {
			v, err := cond.Eval(s, row)
			if err != nil {
				return nil, err
			}
			keep, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("pig: FILTER condition is not boolean")
			}
			if keep {
				return []Row{row}, nil
			}
			return nil, nil
		},
	}, nil
}

// makeProjectOp builds a fused projection FOREACH.
func makeProjectOp(st *ForeachStmt, schema Schema) (rowOp, error) {
	s := schema
	out := make(Schema, len(st.Gens))
	for i, g := range st.Gens {
		out[i] = g.Name
	}
	gens := st.Gens
	return rowOp{
		name: "foreach",
		out:  out,
		apply: func(row Row) ([]Row, error) {
			projected := make(Row, len(gens))
			for i, g := range gens {
				v, err := g.Expr.Eval(s, row)
				if err != nil {
					return nil, err
				}
				projected[i] = v
			}
			return []Row{projected}, nil
		},
	}, nil
}

// makeSampleOp builds a fused deterministic sampler: a row is kept iff
// its content hash falls below the fraction, so the same row is always
// sampled the same way — a requirement for incremental consistency.
func makeSampleOp(st *SampleStmt, schema Schema) rowOp {
	inSchema := schema
	threshold := uint64(st.Fraction * float64(1<<32))
	return rowOp{
		name: "sample",
		out:  inSchema,
		apply: func(row Row) ([]Row, error) {
			h := fingerprintRow(fnvOffset, row) >> 32
			if h < threshold {
				return []Row{row}, nil
			}
			return nil, nil
		},
	}
}

// makeJoinOp builds a fused replicated join.
func makeJoinOp(st *JoinStmt, schema Schema, table *Table) (rowOp, error) {
	srcIdx := schema.Index(st.SrcKey)
	if srcIdx < 0 {
		return rowOp{}, fmt.Errorf("pig: JOIN key %q not in schema %v", st.SrcKey, schema)
	}
	tabIdx := table.Schema.Index(st.TableKey)
	if tabIdx < 0 {
		return rowOp{}, fmt.Errorf("pig: JOIN key %q not in table schema %v", st.TableKey, table.Schema)
	}
	// Build the hash side once.
	index := make(map[string][]Row, len(table.Rows))
	for _, r := range table.Rows {
		k := ToString(r[tabIdx])
		index[k] = append(index[k], r)
	}
	out := make(Schema, 0, len(schema)+len(table.Schema))
	out = append(out, schema...)
	for _, n := range table.Schema {
		if out.Index(n) >= 0 {
			n = st.Table + "_" + n
		}
		out = append(out, n)
	}
	return rowOp{
		name: "join",
		out:  out,
		apply: func(row Row) ([]Row, error) {
			matches := index[ToString(row[srcIdx])]
			if len(matches) == 0 {
				return nil, nil
			}
			rows := make([]Row, 0, len(matches))
			for _, m := range matches {
				joined := make(Row, 0, len(row)+len(m))
				joined = append(joined, row...)
				joined = append(joined, m...)
				rows = append(rows, joined)
			}
			return rows, nil
		},
	}, nil
}

// applyOps threads one row through the fused ops.
func applyOps(ops []rowOp, row Row) ([]Row, error) {
	rows := []Row{row}
	for _, op := range ops {
		var next []Row
		for _, r := range rows {
			outRows, err := op.apply(r)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", op.name, err)
			}
			next = append(next, outRows...)
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// aggSpec is one compiled aggregate column.
type aggSpec struct {
	fn       string
	fieldIdx int // -1 for COUNT(*)
}

// makeGroupStage compiles GROUP + aggregating FOREACH into one MR job.
func makeGroupStage(gs *GroupStmt, fe *ForeachStmt, schema Schema, ops []rowOp, partitions int) (*Stage, Schema, error) {
	inSchema := schema
	if len(ops) > 0 {
		inSchema = ops[len(ops)-1].out
	}
	keyIdx := make([]int, len(gs.Keys))
	for i, k := range gs.Keys {
		keyIdx[i] = inSchema.Index(k)
		if keyIdx[i] < 0 {
			return nil, nil, fmt.Errorf("pig: GROUP key %q not in schema %v", k, inSchema)
		}
	}
	// Output columns: in FOREACH order; `group` refers to the group key.
	var specs []aggSpec
	outSchema := make(Schema, 0, len(fe.Gens))
	type colKind struct {
		isKey  bool
		keyPos int // position within group keys
		agg    int // index into specs
	}
	var cols []colKind
	for _, g := range fe.Gens {
		switch {
		case g.Agg != "":
			idx := -1
			if g.AggField != "" {
				idx = inSchema.Index(g.AggField)
				if idx < 0 {
					return nil, nil, fmt.Errorf("pig: aggregate field %q not in schema %v", g.AggField, inSchema)
				}
			} else if g.Agg != "COUNT" {
				return nil, nil, fmt.Errorf("pig: %s(*) is only valid for COUNT", g.Agg)
			}
			cols = append(cols, colKind{agg: len(specs)})
			specs = append(specs, aggSpec{fn: g.Agg, fieldIdx: idx})
			outSchema = append(outSchema, g.Name)
		default:
			f, ok := g.Expr.(*FieldExpr)
			if !ok {
				return nil, nil, fmt.Errorf("pig: non-aggregate GENERATE column %q after GROUP must be `group` or a key field", g.Name)
			}
			pos := -1
			if f.Name == "group" && len(gs.Keys) == 1 {
				pos = 0
			} else {
				for i, k := range gs.Keys {
					if k == f.Name {
						pos = i
					}
				}
			}
			if pos < 0 {
				return nil, nil, fmt.Errorf("pig: column %q is not a group key", f.Name)
			}
			cols = append(cols, colKind{isKey: true, keyPos: pos})
			outSchema = append(outSchema, g.Name)
		}
	}

	name := "group(" + strings.Join(gs.Keys, ",") + ")"
	job := &mapreduce.Job{
		Name:       name,
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, ok := rec.(Row)
			if !ok {
				return fmt.Errorf("pig: record %T is not a Row", rec)
			}
			rows, err := applyOps(ops, row)
			if err != nil {
				return err
			}
			for _, r := range rows {
				keyVals := make(Row, len(keyIdx))
				keyParts := make([]string, len(keyIdx))
				for i, ki := range keyIdx {
					keyVals[i] = r[ki]
					keyParts[i] = ToString(r[ki])
				}
				val := &AggVal{KeyVals: keyVals, Cells: make([]AggCell, len(specs))}
				for ci, spec := range specs {
					cell := AggCell{Count: 1}
					if spec.fieldIdx >= 0 {
						f, ok := ToNum(r[spec.fieldIdx])
						if !ok {
							return fmt.Errorf("pig: aggregate over non-numeric value %v", r[spec.fieldIdx])
						}
						cell.Sum, cell.Min, cell.Max = f, f, f
					}
					val.Cells[ci] = cell
				}
				emit(strings.Join(keyParts, "\x1f"), val)
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*AggVal)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*AggVal))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*AggVal)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*AggVal))
			}
			return acc
		},
		Commutative: true,
	}
	finalize := func(out mapreduce.Output) []Row {
		keys := sortedKeys(out)
		rows := make([]Row, 0, len(keys))
		for _, k := range keys {
			acc := out[k].(*AggVal)
			row := make(Row, len(cols))
			for i, c := range cols {
				if c.isKey {
					row[i] = acc.KeyVals[c.keyPos]
					continue
				}
				cell := acc.Cells[c.agg]
				switch specs[c.agg].fn {
				case "COUNT":
					row[i] = float64(cell.Count)
				case "SUM":
					row[i] = cell.Sum
				case "AVG":
					if cell.Count == 0 {
						row[i] = 0.0
					} else {
						row[i] = cell.Sum / float64(cell.Count)
					}
				case "MIN":
					row[i] = cell.Min
				case "MAX":
					row[i] = cell.Max
				}
			}
			rows = append(rows, row)
		}
		return rows
	}
	return &Stage{
		Name:      name,
		Job:       job,
		InSchema:  schema,
		OutSchema: outSchema,
		OpNames:   opNames(ops),
		finalize:  finalize,
	}, outSchema, nil
}

// opNames extracts the fused ops' names for plan display.
func opNames(ops []rowOp) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.name
	}
	return out
}

// makeDistinctStage compiles DISTINCT into an MR job.
func makeDistinctStage(st *DistinctStmt, schema Schema, ops []rowOp, partitions int) *Stage {
	inSchema := schema
	if len(ops) > 0 {
		inSchema = ops[len(ops)-1].out
	}
	job := &mapreduce.Job{
		Name:       "distinct",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, ok := rec.(Row)
			if !ok {
				return fmt.Errorf("pig: record %T is not a Row", rec)
			}
			rows, err := applyOps(ops, row)
			if err != nil {
				return err
			}
			for _, r := range rows {
				emit(encodeRow(r), &RowVal{Row: r})
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			return values[0]
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			return values[0]
		},
		Commutative: true,
	}
	finalize := func(out mapreduce.Output) []Row {
		keys := sortedKeys(out)
		rows := make([]Row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, out[k].(*RowVal).Row)
		}
		return rows
	}
	return &Stage{
		Name:      "distinct",
		Job:       job,
		InSchema:  schema,
		OutSchema: inSchema,
		OpNames:   opNames(ops),
		finalize:  finalize,
	}
}

// makeOrderStage compiles ORDER [+ LIMIT] into a single-reducer MR job.
func makeOrderStage(st *OrderStmt, schema Schema, ops []rowOp, limit int) (*Stage, error) {
	inSchema := schema
	if len(ops) > 0 {
		inSchema = ops[len(ops)-1].out
	}
	keyIdx := inSchema.Index(st.Key)
	if keyIdx < 0 {
		return nil, fmt.Errorf("pig: ORDER key %q not in schema %v", st.Key, inSchema)
	}
	desc := st.Desc
	job := &mapreduce.Job{
		Name:       "order(" + st.Key + ")",
		Partitions: 1,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, ok := rec.(Row)
			if !ok {
				return fmt.Errorf("pig: record %T is not a Row", rec)
			}
			rows, err := applyOps(ops, row)
			if err != nil {
				return err
			}
			for _, r := range rows {
				sr := &SortedRows{KeyIdx: keyIdx, Desc: desc, Limit: limit, Rows: []Row{r}}
				emit("__all__", sr)
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*SortedRows)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*SortedRows))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*SortedRows)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*SortedRows))
			}
			return acc
		},
		Commutative: true,
	}
	finalize := func(out mapreduce.Output) []Row {
		v, ok := out["__all__"]
		if !ok {
			return nil
		}
		return v.(*SortedRows).Rows
	}
	name := "order(" + st.Key + ")"
	if limit > 0 {
		name = fmt.Sprintf("%s+limit(%d)", name, limit)
	}
	return &Stage{
		Name:      name,
		Job:       job,
		InSchema:  schema,
		OutSchema: inSchema,
		OpNames:   opNames(ops),
		finalize:  finalize,
	}, nil
}

// Finalize converts a stage's job output into rows and applies trailing
// fused operations.
func (s *Stage) Finalize(out mapreduce.Output) ([]Row, error) {
	rows := s.finalize(out)
	if len(s.post) == 0 {
		return rows, nil
	}
	var final []Row
	for _, r := range rows {
		outRows, err := applyOps(s.post, r)
		if err != nil {
			return nil, err
		}
		final = append(final, outRows...)
	}
	return final, nil
}

// sortedKeys returns output keys in sorted order for deterministic rows.
func sortedKeys(out mapreduce.Output) []string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
