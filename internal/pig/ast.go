// Package pig implements the data-flow query-processing layer of §5: a
// Pig-Latin-like language whose scripts compile to a pipeline of
// MapReduce jobs, executed incrementally over sliding windows with
// multi-level contraction trees — the window-appropriate self-adjusting
// tree for the first stage and strawman trees with content-fingerprint
// change detection for every later stage.
//
// The dialect supports the operators the PigMix-style evaluation needs:
//
//	rel = LOAD 'name' AS (f1, f2, ...);
//	rel = FILTER src BY <boolean expr>;
//	rel = FOREACH src GENERATE <expr> [AS name], ...;        (projection)
//	rel = FOREACH grouped GENERATE group, COUNT(*), SUM(f);  (aggregation)
//	rel = JOIN src BY field, 'table' BY field;               (replicated)
//	rel = GROUP src BY field[, field...];
//	rel = DISTINCT src;
//	rel = ORDER src BY field [DESC];
//	rel = LIMIT src n;
//	STORE rel INTO 'out';
//
// JOIN is a map-side replicated join against a static side table
// (registered at plan time), mirroring Pig's `USING 'replicated'`.
package pig

import "fmt"

// Statement is one line of a Pig script.
type Statement interface {
	// alias returns the relation the statement defines ("" for STORE).
	alias() string
	// source returns the upstream relation ("" for LOAD).
	source() string
}

// LoadStmt binds the window input stream to an alias with a schema.
type LoadStmt struct {
	Alias  string
	Input  string
	Schema []string
}

// FilterStmt keeps rows satisfying Cond.
type FilterStmt struct {
	Alias string
	Src   string
	Cond  Expr
}

// GenExpr is one FOREACH output column.
type GenExpr struct {
	// Expr computes the column (nil for aggregate columns).
	Expr Expr
	// Agg is the aggregate function name (COUNT, SUM, AVG, MIN, MAX)
	// when the FOREACH follows a GROUP; empty for plain projection.
	Agg string
	// AggField is the aggregated field ("" for COUNT(*)).
	AggField string
	// Name is the output column name.
	Name string
}

// ForeachStmt projects or aggregates.
type ForeachStmt struct {
	Alias string
	Src   string
	Gens  []GenExpr
}

// GroupStmt groups rows by key fields.
type GroupStmt struct {
	Alias string
	Src   string
	Keys  []string
}

// JoinStmt is a replicated join of Src against the static Table.
type JoinStmt struct {
	Alias    string
	Src      string
	SrcKey   string
	Table    string
	TableKey string
}

// SampleStmt keeps a deterministic (content-hashed) fraction of rows, so
// incremental and from-scratch runs sample identically.
type SampleStmt struct {
	Alias    string
	Src      string
	Fraction float64
}

// DistinctStmt removes duplicate rows.
type DistinctStmt struct {
	Alias string
	Src   string
}

// OrderStmt sorts by one field.
type OrderStmt struct {
	Alias string
	Src   string
	Key   string
	Desc  bool
}

// LimitStmt keeps the first N rows.
type LimitStmt struct {
	Alias string
	Src   string
	N     int
}

// StoreStmt terminates the script.
type StoreStmt struct {
	Src    string
	Output string
}

func (s *LoadStmt) alias() string     { return s.Alias }
func (s *LoadStmt) source() string    { return "" }
func (s *FilterStmt) alias() string   { return s.Alias }
func (s *FilterStmt) source() string  { return s.Src }
func (s *ForeachStmt) alias() string  { return s.Alias }
func (s *ForeachStmt) source() string { return s.Src }
func (s *GroupStmt) alias() string    { return s.Alias }
func (s *GroupStmt) source() string   { return s.Src }
func (s *JoinStmt) alias() string     { return s.Alias }
func (s *JoinStmt) source() string    { return s.Src }
func (s *SampleStmt) alias() string   { return s.Alias }
func (s *SampleStmt) source() string  { return s.Src }
func (s *DistinctStmt) alias() string { return s.Alias }
func (s *DistinctStmt) source() string {
	return s.Src
}
func (s *OrderStmt) alias() string  { return s.Alias }
func (s *OrderStmt) source() string { return s.Src }
func (s *LimitStmt) alias() string  { return s.Alias }
func (s *LimitStmt) source() string { return s.Src }
func (s *StoreStmt) alias() string  { return "" }
func (s *StoreStmt) source() string { return s.Src }

// Script is a parsed Pig program: a linear chain of statements from LOAD
// to STORE.
type Script struct {
	Statements []Statement
}

// Chain returns the statements ordered from LOAD to STORE, validating
// that the script forms a single linear data flow.
func (s *Script) Chain() ([]Statement, error) {
	if len(s.Statements) == 0 {
		return nil, fmt.Errorf("pig: empty script")
	}
	byAlias := make(map[string]Statement, len(s.Statements))
	var store *StoreStmt
	var load *LoadStmt
	for _, st := range s.Statements {
		switch x := st.(type) {
		case *StoreStmt:
			if store != nil {
				return nil, fmt.Errorf("pig: multiple STORE statements")
			}
			store = x
		case *LoadStmt:
			if load != nil {
				return nil, fmt.Errorf("pig: multiple LOAD statements")
			}
			load = x
			byAlias[x.alias()] = st
		default:
			if _, dup := byAlias[st.alias()]; dup {
				return nil, fmt.Errorf("pig: alias %q defined twice", st.alias())
			}
			byAlias[st.alias()] = st
		}
	}
	if store == nil {
		return nil, fmt.Errorf("pig: missing STORE")
	}
	if load == nil {
		return nil, fmt.Errorf("pig: missing LOAD")
	}
	chain := []Statement{store}
	visited := make(map[string]bool, len(byAlias))
	src := store.source()
	for src != "" {
		if visited[src] {
			return nil, fmt.Errorf("pig: relation %q is defined in terms of itself", src)
		}
		visited[src] = true
		st, ok := byAlias[src]
		if !ok {
			return nil, fmt.Errorf("pig: unknown relation %q", src)
		}
		chain = append(chain, st)
		src = st.source()
	}
	if chain[len(chain)-1] != Statement(load) {
		return nil, fmt.Errorf("pig: data flow does not start at LOAD")
	}
	// Reverse into LOAD→STORE order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}
