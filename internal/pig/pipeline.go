package pig

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"slider/internal/core"
	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// PipelineConfig configures incremental execution of a compiled plan.
type PipelineConfig struct {
	// Mode is the sliding-window variant of the first stage.
	Mode sliderrt.Mode
	// Randomized, SplitProcessing, BucketSplits, WindowBuckets mirror
	// sliderrt.Config for the first stage.
	Randomized      bool
	SplitProcessing bool
	BucketSplits    int
	WindowBuckets   int
	// PseudoSplits is the number of pseudo-splits each stage boundary
	// fans its rows into for the next stage (default 8).
	PseudoSplits int
	// Memo configures the first stage's memoization layer.
	Memo memo.Config
	// Seed fixes randomized-tree coin flips.
	Seed uint64
}

// PipelineResult is the outcome of one pipeline run.
type PipelineResult struct {
	// Rows is the final STORE relation.
	Rows []Row
	// Schema names the output columns.
	Schema Schema
	// Report aggregates foreground work across every stage.
	Report metrics.Report
	// Background is the first stage's background pre-processing work.
	Background metrics.Report
	// StageReports holds per-stage foreground reports.
	StageReports []metrics.Report
}

// Pipeline executes a compiled plan incrementally over a sliding window:
// the first stage uses the window-appropriate self-adjusting contraction
// tree, and every later stage uses strawman trees with content-fingerprint
// change detection (§5).
type Pipeline struct {
	plan *Plan
	cfg  PipelineConfig
	rt   *sliderrt.Runtime
	late []*laterStage
}

// laterStage executes stage k ≥ 2 incrementally through core.MultiLevel:
// map outputs are memoized by input fingerprint, and per-partition
// strawman trees with fingerprint-derived leaf IDs reuse every
// sub-computation whose inputs did not change (§5).
type laterStage struct {
	stage *Stage
	ml    *core.MultiLevel[mapreduce.Payload]
	comb  int64 // combiner-call counter for the merge closure
}

// NewPipeline prepares incremental execution of a plan.
func NewPipeline(plan *Plan, cfg PipelineConfig) (*Pipeline, error) {
	if len(plan.Stages) == 0 {
		return nil, fmt.Errorf("pig: empty plan")
	}
	if cfg.PseudoSplits <= 0 {
		cfg.PseudoSplits = 8
	}
	rt, err := sliderrt.New(plan.Stages[0].Job, sliderrt.Config{
		Mode:            cfg.Mode,
		Randomized:      cfg.Randomized,
		SplitProcessing: cfg.SplitProcessing,
		BucketSplits:    cfg.BucketSplits,
		WindowBuckets:   cfg.WindowBuckets,
		Seed:            cfg.Seed,
		Memo:            cfg.Memo,
	})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{plan: plan, cfg: cfg, rt: rt}
	for _, st := range plan.Stages[1:] {
		ls := &laterStage{stage: st}
		job := st.Job
		// Later-stage strawman nodes are binary (their fingerprints key
		// subtree reuse), so this merge sees exactly two payloads; it
		// still routes through the K-way path for its shared empty-side
		// and allocation fast paths.
		merge := func(a, b mapreduce.Payload) mapreduce.Payload {
			out, c := mapreduce.MergeOrderedK(job, a, b)
			ls.comb += c
			return out
		}
		ls.ml = core.NewMultiLevel(merge, st.Job.NumPartitions())
		p.late = append(p.late, ls)
	}
	return p, nil
}

// Initial runs the whole pipeline over the first window.
func (p *Pipeline) Initial(splits []mapreduce.Split) (*PipelineResult, error) {
	res, err := p.rt.Initial(splits)
	if err != nil {
		return nil, err
	}
	return p.runLater(res)
}

// Advance runs the whole pipeline after a window slide.
func (p *Pipeline) Advance(drop int, add []mapreduce.Split) (*PipelineResult, error) {
	res, err := p.rt.Advance(drop, add)
	if err != nil {
		return nil, err
	}
	return p.runLater(res)
}

// runLater threads the first stage's output through the later stages.
func (p *Pipeline) runLater(first *sliderrt.RunResult) (*PipelineResult, error) {
	out := &PipelineResult{
		Background:   first.Background,
		StageReports: []metrics.Report{first.Report},
	}
	rows, err := p.plan.Stages[0].Finalize(first.Output)
	if err != nil {
		return nil, err
	}
	for _, ls := range p.late {
		inputs := pseudoSplits(rows, p.cfg.PseudoSplits)
		rec := metrics.NewRecorder()
		stageOut, err := ls.run(inputs, rec)
		if err != nil {
			return nil, err
		}
		rows, err = ls.stage.Finalize(stageOut)
		if err != nil {
			return nil, err
		}
		out.StageReports = append(out.StageReports, rec.Snapshot())
	}
	out.Rows = rows
	last := p.plan.Stages[len(p.plan.Stages)-1]
	out.Schema = last.OutSchema
	out.Report = metrics.MergeReports(out.StageReports...)
	return out, nil
}

// pseudoSplit is one content-addressed input chunk of a later stage.
type pseudoSplit struct {
	fp   uint64
	rows []Row
}

// pseudoSplits partitions rows into n content-addressed chunks: a row
// always lands in the chunk selected by its own fingerprint, so unchanged
// rows produce unchanged chunks regardless of what happened elsewhere.
func pseudoSplits(rows []Row, n int) []pseudoSplit {
	buckets := make([][]Row, n)
	for _, r := range rows {
		h := fingerprintRow(fnvOffset, r)
		buckets[h%uint64(n)] = append(buckets[h%uint64(n)], r)
	}
	out := make([]pseudoSplit, n)
	for i, b := range buckets {
		sort.SliceStable(b, func(x, y int) bool { return encodeRow(b[x]) < encodeRow(b[y]) })
		out[i] = pseudoSplit{fp: FingerprintRows(b) ^ uint64(i)*0x9e3779b97f4a7c15, rows: b}
	}
	return out
}

// run executes a later stage over its pseudo-splits.
func (ls *laterStage) run(inputs []pseudoSplit, rec *metrics.Recorder) (mapreduce.Output, error) {
	job := ls.stage.Job
	n := job.NumPartitions()

	fps := make([]uint64, len(inputs))
	for i, in := range inputs {
		fps[i] = in.fp
	}
	var mapCost time.Duration
	runStart := time.Now()
	statsBefore := ls.ml.Stats()
	roots, hasRoot, err := ls.ml.Run(fps, func(i int) ([]mapreduce.Payload, error) {
		in := inputs[i]
		records := make([]mapreduce.Record, len(in.rows))
		for j, r := range in.rows {
			records[j] = mapreduce.Record(r)
		}
		result, err := mapreduce.RunMapTask(job, mapreduce.Split{
			ID:      "pseudo-" + strconv.FormatUint(in.fp, 16),
			Records: records,
		})
		if err != nil {
			return nil, err
		}
		mapCost += result.Cost
		rec.RecordTask(metrics.Task{
			Phase:         metrics.PhaseMap,
			Cost:          result.Cost,
			InputBytes:    result.Bytes,
			PreferredNode: -1,
		})
		rec.Add(metrics.Counters{MapTasks: 1, MapRecords: result.Records, CacheMisses: 1})
		return result.Parts, nil
	})
	if err != nil {
		return nil, err
	}
	reused := ls.ml.Stats().InputsReused - statsBefore.InputsReused
	for i := int64(0); i < reused; i++ {
		rec.RecordTask(metrics.Task{Phase: metrics.PhaseMap, Reused: true})
	}
	rec.Add(metrics.Counters{MapTasksReused: reused, CacheHits: reused})

	// The contraction work is the Run time net of the map computes,
	// attributed evenly across the per-partition strawman builds.
	contraction := time.Since(runStart) - mapCost
	if contraction < 0 {
		contraction = 0
	}
	perPart := contraction / time.Duration(n)
	for p := 0; p < n; p++ {
		rec.RecordTask(metrics.Task{
			Phase:         metrics.PhaseContraction,
			Cost:          perPart,
			PreferredNode: -1,
		})
	}
	rec.Add(metrics.Counters{CombineCalls: ls.comb})
	ls.comb = 0

	out := make(mapreduce.Output)
	for p := 0; p < n; p++ {
		var rootSet []mapreduce.Payload
		if hasRoot[p] {
			rootSet = []mapreduce.Payload{roots[p]}
		}
		start := time.Now()
		partOut, calls := mapreduce.ReducePayload(job, rootSet)
		rec.RecordTask(metrics.Task{
			Phase:         metrics.PhaseReduce,
			Cost:          time.Since(start),
			PreferredNode: -1,
		})
		rec.Add(metrics.Counters{ReduceCalls: calls})
		for k, v := range partOut {
			out[k] = v
		}
	}
	return out, nil
}

// RunScratch executes the whole plan non-incrementally over the window —
// the recompute-from-scratch baseline for query pipelines (Figure 10).
func RunScratch(plan *Plan, window []mapreduce.Split, rec *metrics.Recorder) ([]Row, Schema, error) {
	if len(plan.Stages) == 0 {
		return nil, nil, fmt.Errorf("pig: empty plan")
	}
	out, err := mapreduce.RunScratch(plan.Stages[0].Job, window, 0, rec)
	if err != nil {
		return nil, nil, err
	}
	rows, err := plan.Stages[0].Finalize(out)
	if err != nil {
		return nil, nil, err
	}
	for _, st := range plan.Stages[1:] {
		inputs := pseudoSplits(rows, 8)
		splits := make([]mapreduce.Split, 0, len(inputs))
		for _, in := range inputs {
			records := make([]mapreduce.Record, len(in.rows))
			for i, r := range in.rows {
				records[i] = mapreduce.Record(r)
			}
			splits = append(splits, mapreduce.Split{
				ID:      "pseudo-" + strconv.FormatUint(in.fp, 16),
				Records: records,
			})
		}
		out, err := mapreduce.RunScratch(st.Job, splits, 0, rec)
		if err != nil {
			return nil, nil, err
		}
		rows, err = st.Finalize(out)
		if err != nil {
			return nil, nil, err
		}
	}
	last := plan.Stages[len(plan.Stages)-1]
	return rows, last.OutSchema, nil
}
