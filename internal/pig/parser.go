package pig

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds.
type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex splits a script into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j == len(src) {
				return nil, fmt.Errorf("pig: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case strings.ContainsRune("=!<>", rune(c)):
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, token{kind: tokSymbol, text: src[i:j], pos: i})
			i = j
		case strings.ContainsRune("();,*+-/.", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("pig: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a Pig-lite script.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{}
	for p.peek().kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		script.Statements = append(script.Statements, st)
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	if len(script.Statements) == 0 {
		return nil, fmt.Errorf("pig: empty script")
	}
	return script, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// keywordIs checks case-insensitive identifier equality.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !keywordIs(t, kw) {
		return fmt.Errorf("pig: expected %s at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("pig: expected %q at %d, got %q", sym, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("pig: expected identifier at %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

func (p *parser) expectString() (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", fmt.Errorf("pig: expected quoted string at %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

// statement parses either `STORE rel INTO 'out'` or `alias = <op> ...`.
func (p *parser) statement() (Statement, error) {
	if keywordIs(p.peek(), "STORE") {
		p.next()
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		out, err := p.expectString()
		if err != nil {
			return nil, err
		}
		return &StoreStmt{Src: src, Output: out}, nil
	}
	alias, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokIdent {
		return nil, fmt.Errorf("pig: expected operator at %d, got %q", op.pos, op.text)
	}
	switch strings.ToUpper(op.text) {
	case "LOAD":
		return p.load(alias)
	case "FILTER":
		return p.filter(alias)
	case "FOREACH":
		return p.foreach(alias)
	case "GROUP":
		return p.group(alias)
	case "JOIN":
		return p.join(alias)
	case "DISTINCT":
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DistinctStmt{Alias: alias, Src: src}, nil
	case "SAMPLE":
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("pig: SAMPLE needs a fraction at %d", t.pos)
		}
		frac, err := strconv.ParseFloat(t.text, 64)
		if err != nil || frac < 0 || frac > 1 {
			return nil, fmt.Errorf("pig: bad SAMPLE fraction %q", t.text)
		}
		return &SampleStmt{Alias: alias, Src: src, Fraction: frac}, nil
	case "ORDER":
		return p.order(alias)
	case "LIMIT":
		return p.limit(alias)
	default:
		return nil, fmt.Errorf("pig: unknown operator %q at %d", op.text, op.pos)
	}
}

func (p *parser) load(alias string) (Statement, error) {
	input, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var schema []string
	for {
		f, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		schema = append(schema, f)
		t := p.next()
		if t.kind == tokSymbol && t.text == ")" {
			break
		}
		if t.kind != tokSymbol || t.text != "," {
			return nil, fmt.Errorf("pig: expected , or ) at %d", t.pos)
		}
	}
	return &LoadStmt{Alias: alias, Input: input, Schema: schema}, nil
}

func (p *parser) filter(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	cond, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	return &FilterStmt{Alias: alias, Src: src, Cond: cond}, nil
}

func (p *parser) foreach(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("GENERATE"); err != nil {
		return nil, err
	}
	var gens []GenExpr
	for {
		gen, err := p.genExpr()
		if err != nil {
			return nil, err
		}
		gens = append(gens, gen)
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.next()
			continue
		}
		break
	}
	return &ForeachStmt{Alias: alias, Src: src, Gens: gens}, nil
}

// genExpr parses one GENERATE column: aggregate call, or expression, with
// an optional `AS name`.
func (p *parser) genExpr() (GenExpr, error) {
	var gen GenExpr
	t := p.peek()
	if t.kind == tokIdent {
		upper := strings.ToUpper(t.text)
		switch upper {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return gen, err
			}
			gen.Agg = upper
			arg := p.next()
			switch {
			case arg.kind == tokSymbol && arg.text == "*":
				gen.AggField = ""
			case arg.kind == tokIdent:
				gen.AggField = arg.text
			default:
				return gen, fmt.Errorf("pig: bad aggregate argument at %d", arg.pos)
			}
			if err := p.expectSymbol(")"); err != nil {
				return gen, err
			}
			gen.Name = strings.ToLower(upper)
			if gen.AggField != "" {
				gen.Name += "_" + gen.AggField
			}
		}
	}
	if gen.Agg == "" {
		expr, err := p.addExpr()
		if err != nil {
			return gen, err
		}
		gen.Expr = expr
		if f, ok := expr.(*FieldExpr); ok {
			gen.Name = f.Name
		} else {
			gen.Name = expr.String()
		}
	}
	if keywordIs(p.peek(), "AS") {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return gen, err
		}
		gen.Name = name
	}
	return gen, nil
}

func (p *parser) group(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var keys []string
	for {
		k, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
		if t := p.peek(); t.kind == tokSymbol && t.text == "," {
			p.next()
			continue
		}
		break
	}
	return &GroupStmt{Alias: alias, Src: src, Keys: keys}, nil
}

func (p *parser) join(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	srcKey, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	table, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	tableKey, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &JoinStmt{Alias: alias, Src: src, SrcKey: srcKey, Table: table, TableKey: tableKey}, nil
}

func (p *parser) order(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	key, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	desc := false
	if keywordIs(p.peek(), "DESC") {
		p.next()
		desc = true
	} else if keywordIs(p.peek(), "ASC") {
		p.next()
	}
	return &OrderStmt{Alias: alias, Src: src, Key: key, Desc: desc}, nil
}

func (p *parser) limit(alias string) (Statement, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokNumber {
		return nil, fmt.Errorf("pig: LIMIT needs a number at %d", t.pos)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return nil, fmt.Errorf("pig: bad LIMIT count %q", t.text)
	}
	return &LimitStmt{Alias: alias, Src: src, N: n}, nil
}

// funcCall parses the argument list of a scalar function.
func (p *parser) funcCall(name string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fn := &FuncExpr{Name: name}
	for {
		arg, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		fn.Args = append(fn.Args, arg)
		t := p.next()
		if t.kind == tokSymbol && t.text == ")" {
			break
		}
		if t.kind != tokSymbol || t.text != "," {
			return nil, fmt.Errorf("pig: expected , or ) in %s() at %d", name, t.pos)
		}
	}
	if want := scalarFuncs[name]; len(fn.Args) != want {
		return nil, fmt.Errorf("pig: %s takes %d argument(s), got %d", name, want, len(fn.Args))
	}
	return fn, nil
}

// Expression grammar: or → and → not → cmp → add → mul → primary.

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "OR") {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "AND") {
		p.next()
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if keywordIs(p.peek(), "NOT") {
		p.next()
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.next()
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, Left: left, Right: right}, nil
		case "=":
			return nil, fmt.Errorf("pig: use == for comparison at %d", t.pos)
		}
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			right, err := p.primary()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("pig: bad number %q at %d", t.text, t.pos)
		}
		return &ConstExpr{Val: f}, nil
	case t.kind == tokString:
		return &ConstExpr{Val: t.text}, nil
	case t.kind == tokIdent:
		upper := strings.ToUpper(t.text)
		if _, isFunc := scalarFuncs[upper]; isFunc && p.peek().kind == tokSymbol && p.peek().text == "(" {
			return p.funcCall(upper)
		}
		return &FieldExpr{Name: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("pig: unexpected token %q at %d", t.text, t.pos)
	}
}
