module slider

go 1.22
